package experiments

import (
	"testing"
	"time"
)

// TestDiskScalingCurveShape builds a very reduced warehouse and checks
// the measured curve's invariants: both series present, one point per
// disk count, responses positive, and the modelled speedup monotone in
// the disk count (the measured series is timing-dependent, so only its
// shape is sanity-checked loosely).
func TestDiskScalingCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an on-disk warehouse")
	}
	disks := []int{1, 2, 4}
	fig, err := DiskScalingCurve(DiskCurveOptions{
		Scale:   240,
		Disks:   disks,
		Workers: 8,
		Delay:   200 * time.Microsecond,
		Queries: 1,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("got %d series, want measured + modelled", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(disks) {
			t.Fatalf("%s: %d points, want %d", s.Label, len(s.Points), len(disks))
		}
		for i, pt := range s.Points {
			if pt.X != float64(disks[i]) {
				t.Errorf("%s point %d at x=%v, want %d", s.Label, i, pt.X, disks[i])
			}
			if pt.ResponseTime <= 0 {
				t.Errorf("%s point %d: non-positive response %v", s.Label, i, pt.ResponseTime)
			}
		}
	}
	model := fig.Series[1]
	for i := 1; i < len(model.Points); i++ {
		if model.Points[i].Speedup <= model.Points[i-1].Speedup {
			t.Errorf("modelled speedup not increasing: %v", model.Points)
		}
	}
	// The measured curve must at least improve from 1 disk to the widest.
	meas := fig.Series[0]
	if last := meas.Points[len(meas.Points)-1].Speedup; last <= 1.2 {
		t.Errorf("measured speedup at %d disks = %.2f, want > 1.2", disks[len(disks)-1], last)
	}
}
