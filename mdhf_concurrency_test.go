package mdhf

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentExecutorHammer hammers one shared StorageExecutor from N
// goroutines with the paper's query classes, single-disk and declustered,
// asserting every result is byte-identical to serial execution — the
// safety baseline the Warehouse's admission scheduler builds on. Run
// under -race in CI.
func TestConcurrentExecutorHammer(t *testing.T) {
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	icfg := APB1Indexes(star)
	dir := t.TempDir()
	store, err := BuildStore(dir, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	bf, err := BuildBitmapFile(dir, store, icfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	queries := warehouseQueries(t, star)

	for _, disks := range []int{0, 4} {
		name := "single-disk"
		if disks > 0 {
			name = fmt.Sprintf("declustered-%d", disks)
			if _, err := DeclusterStore(store, bf, Placement{Disks: disks, Scheme: RoundRobin, Staggered: true}); err != nil {
				t.Fatal(err)
			}
		}
		t.Run(name, func(t *testing.T) {
			type result struct {
				agg Aggregate
				io  StorageIOStats
			}
			serial := NewStorageExecutor(store, bf)
			serial.Workers = 1
			want := map[string]result{}
			for qname, q := range queries {
				sagg, io, err := serial.Execute(q)
				if err != nil {
					t.Fatalf("serial %s: %v", qname, err)
				}
				want[qname] = result{
					agg: Aggregate{Count: sagg.Count, UnitsSold: sagg.UnitsSold, DollarSales: sagg.DollarSales, Cost: sagg.Cost},
					io:  io,
				}
			}

			// One shared executor, its own parallel pool, N goroutines.
			shared := NewStorageExecutor(store, bf)
			shared.Workers = 4
			const goroutines = 8
			var wg sync.WaitGroup
			errc := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for rep := 0; rep < 3; rep++ {
						for qname, q := range queries {
							sagg, io, err := shared.Execute(q)
							if err != nil {
								errc <- fmt.Errorf("g%d %s: %v", g, qname, err)
								return
							}
							agg := Aggregate{Count: sagg.Count, UnitsSold: sagg.UnitsSold, DollarSales: sagg.DollarSales, Cost: sagg.Cost}
							if agg != want[qname].agg || io != want[qname].io {
								errc <- fmt.Errorf("g%d %s: diverged from serial: got %+v/%+v want %+v/%+v",
									g, qname, agg, io, want[qname].agg, want[qname].io)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentEngineHammer is the in-memory counterpart: one Engine
// (materialised and compressed) executed from N goroutines concurrently,
// each result byte-identical to serial execution.
func TestConcurrentEngineHammer(t *testing.T) {
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	icfg := APB1Indexes(star)
	queries := warehouseQueries(t, star)

	for _, compressed := range []bool{false, true} {
		name, build := "materialized", BuildEngine
		if compressed {
			name, build = "compressed", BuildCompressedEngine
		}
		t.Run(name, func(t *testing.T) {
			eng, err := build(tab, spec, icfg)
			if err != nil {
				t.Fatal(err)
			}
			type result struct {
				agg Aggregate
				st  EngineStats
			}
			want := map[string]result{}
			for qname, q := range queries {
				agg, st, err := eng.Execute(q, 1)
				if err != nil {
					t.Fatalf("serial %s: %v", qname, err)
				}
				want[qname] = result{agg: agg, st: st}
			}
			const goroutines = 8
			var wg sync.WaitGroup
			errc := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for rep := 0; rep < 3; rep++ {
						for qname, q := range queries {
							agg, st, err := eng.Execute(q, 4)
							if err != nil {
								errc <- fmt.Errorf("g%d %s: %v", g, qname, err)
								return
							}
							if agg != want[qname].agg || st != want[qname].st {
								errc <- fmt.Errorf("g%d %s: diverged from serial: got %+v/%+v want %+v/%+v",
									g, qname, agg, st, want[qname].agg, want[qname].st)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}
