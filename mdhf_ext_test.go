package mdhf

import (
	"testing"
)

func TestPublicAPIRangeFragmentation(t *testing.T) {
	star := APB1()
	tm := star.DimIndex("time")
	pd := star.DimIndex("product")
	month := star.Dims[tm].LevelIndex("month")
	group := star.Dims[pd].LevelIndex("group")
	spec, err := NewRangeFragmentation(star, []RangeFragAttr{
		UniformRanges(star, tm, month, 6),
		UniformRanges(star, pd, group, 48),
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.NumFragments() != 288 {
		t.Fatalf("fragments = %d", spec.NumFragments())
	}
	q, err := ParseQuery(star, "time::month=3, product::group=7")
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.RelevantCount(q); got != 1 {
		t.Fatalf("relevant = %d, want 1", got)
	}
}

func TestPublicAPISkewedData(t *testing.T) {
	star := APB1Scaled(60)
	star.Density = 0.1
	skew := UniformSkew(star)
	skew.Theta[0] = 1.0
	tab, err := GenerateSkewedData(star, 4, skew)
	if err != nil {
		t.Fatal(err)
	}
	if int64(tab.N()) != star.N() {
		t.Fatalf("rows = %d, want %d", tab.N(), star.N())
	}
	// The skewed table works with the regular engine.
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := BuildEngine(tab, spec, APB1Indexes(star))
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueryGenerator(star, 1).Next(OneGroup)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eng.Execute(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := ScanAggregate(tab, q); got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestPublicAPIStorageRoundTrip(t *testing.T) {
	star := TinySchema()
	tab, err := GenerateData(star, 8)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	icfg := make(IndexConfig, len(star.Dims))
	for i := range icfg {
		icfg[i] = IndexSpec{Kind: EncodedIndex}
	}
	dir := t.TempDir()
	store, err := BuildStore(dir, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	bf, err := BuildBitmapFile(dir, store, icfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	ex := NewStorageExecutor(store, bf)
	q, err := NewQueryGenerator(star, 3).Next(OneStore)
	if err != nil {
		t.Fatal(err)
	}
	got, io, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want := ScanAggregate(tab, q)
	if got.Count != want.Count || got.DollarSales != want.DollarSales {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if io.FactPages == 0 {
		t.Fatal("no physical I/O recorded")
	}
	// Reopen path.
	re, err := OpenStore(dir, star, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumFragments() != store.NumFragments() {
		t.Fatal("reopened store differs")
	}
}

func TestPublicAPIDimCatalog(t *testing.T) {
	star := APB1()
	catalog := BuildDimCatalog(star)
	q, err := catalog.ParseQuery("customer.store = 'STORE-0007'")
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := ParseFragmentation(star, "customer::store")
	if got := spec.RelevantCount(q); got != 1 {
		t.Fatalf("relevant = %d", got)
	}
}

func TestPublicAPISharedNothingSim(t *testing.T) {
	star := APB1()
	spec, _ := ParseFragmentation(star, "time::month, product::group")
	icfg := APB1Indexes(star)
	cfg := DefaultSimConfig()
	cfg.Architecture = SharedNothing
	placement := Placement{Disks: cfg.Disks, Scheme: RoundRobin, Staggered: true}
	sys, err := NewSimSystem(cfg, icfg, placement, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ParseQuery(star, "time::month=3")
	rs := sys.Run([]*SimPlan{NewSimPlan(spec, icfg, q, cfg)})
	if rs[0].ResponseTime <= 0 {
		t.Fatal("shared-nothing query did not complete")
	}
}

func TestPublicAPIDeclusteredStorage(t *testing.T) {
	star := TinySchema()
	tab, err := GenerateData(star, 8)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	icfg := make(IndexConfig, len(star.Dims))
	for i := range icfg {
		icfg[i] = IndexSpec{Kind: EncodedIndex}
	}
	dir := t.TempDir()
	store, err := BuildStore(dir, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	bf, err := BuildBitmapFile(dir, store, icfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	q, err := NewQueryGenerator(star, 3).Next(OneStore)
	if err != nil {
		t.Fatal(err)
	}
	single := workerExecutor(store, bf, 1)
	wantAgg, wantIO, err := single.Execute(q)
	if err != nil {
		t.Fatal(err)
	}

	placement := Placement{Disks: 4, Scheme: GapRoundRobin, Staggered: true}
	ds, err := DeclusterStore(store, bf, placement)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Disks() != 4 {
		t.Fatalf("disk set has %d disks", ds.Disks())
	}
	ex := workerExecutor(store, bf, 8)
	gotAgg, gotIO, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if gotAgg != wantAgg || gotIO != wantIO {
		t.Fatalf("declustered %+v/%+v != single-disk %+v/%+v", gotAgg, gotIO, wantAgg, wantIO)
	}
	var ios int64
	for _, d := range ds.Stats() {
		ios += d.IOs
	}
	if ios != gotIO.FactIOs+gotIO.BitmapIOs {
		t.Fatalf("disk stats account %d IOs, IOStats %d", ios, gotIO.FactIOs+gotIO.BitmapIOs)
	}

	// The analytical side: queue-model response and disk advice.
	est := EstimateResponse(spec, icfg, q, DefaultCostParams(), DiskParams{Placement: placement, AccessTime: 12e6})
	if est.Response <= 0 || est.DisksUsed < 1 {
		t.Fatalf("bad response estimate %+v", est)
	}
	mix := []WeightedQuery{{Name: "1STORE", Query: q, Weight: 1}}
	ranked := AdviseDisks(spec, icfg, mix, DefaultCostParams(), DiskParams{Placement: Placement{Staggered: true}, AccessTime: 12e6}, []int{1, 2, 4})
	if len(ranked) != 6 {
		t.Fatalf("AdviseDisks returned %d candidates, want 6", len(ranked))
	}
	if ranked[0].Placement.Disks == 1 {
		t.Fatal("advice ranked one disk best for a full-fanout query")
	}
}
