// Package mdhf is the public API of this reproduction of "Multi-Dimensional
// Database Allocation for Parallel Data Warehouses" (Stöhr, Märtens, Rahm;
// VLDB 2000).
//
// It provides:
//
//   - star schema modelling with hierarchical dimensions (APB-1 built in);
//   - simple and encoded (hierarchical) bitmap join indices;
//   - MDHF, the paper's multi-dimensional hierarchical fragmentation, with
//     query-to-fragment confinement, bitmap elimination, and the
//     fragmentation thresholds and guidelines of Section 4;
//   - the analytical I/O cost model and a fragmentation advisor;
//   - disk allocation schemes including staggered round robin;
//   - a discrete-event Shared Disk PDBS simulator (SIMPAD);
//   - a real goroutine-parallel query engine over generated fact data and
//     a fragment-parallel on-disk executor, both running on a shared
//     scatter/gather worker pool with deterministic merge and per-worker
//     scratch reuse, with a compressed execution fast path that queries
//     WAH bitmaps without decompressing them;
//   - the workload generator and the harness regenerating every table and
//     figure of the paper's evaluation;
//   - the Warehouse serving façade tying all of it together: one handle
//     that serves many concurrent star queries over one shared worker
//     pool and one disk set.
//
// # Quick start
//
// Open a Warehouse and serve queries through it (see ExampleOpen for the
// runnable version):
//
//	w, _ := mdhf.Open(ctx, mdhf.Config{
//		Star:          mdhf.APB1Scaled(60),
//		Fragmentation: "time::month, product::group",
//	}, mdhf.WithDisks(8, mdhf.RoundRobin))
//	defer w.Close()
//	q, _ := w.QueryText("customer::store=7")
//	ex, _ := q.Explain(ctx)  // analytical cost + disk-queue response + plan
//	agg, st, _ := q.Execute(ctx)
//
// Explain works at any scale (it needs no fact data); Execute builds the
// configured backend on first use and admits any number of concurrent
// callers onto the shared pool, with results bit-for-bit identical to
// serial execution.
//
// The free functions below predate the Warehouse and remain as thin
// shims over the same internals (the formerly deprecated
// explicit-worker-count duplicates are gone — use WithWorkers, or set
// StorageExecutor.Workers directly). See the README's migration table,
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package mdhf

import (
	"repro/internal/alloc"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dimtable"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/kernel"
	"repro/internal/schema"
	"repro/internal/simpad"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Workers resolves a fragment-worker count option shared by the parallel
// engine, the on-disk executor and the advisor: values below 1 mean one
// worker per available CPU (GOMAXPROCS).
func Workers(n int) int { return exec.Workers(n) }

// Schema types.
type (
	// Star is a star schema with hierarchically structured dimensions.
	Star = schema.Star
	// Dimension is one hierarchical dimension.
	Dimension = schema.Dimension
	// Level is one hierarchy level.
	Level = schema.Level
)

// APB1 returns the paper's evaluation schema: APB-1 with 15 channels,
// 24 months, density 25% — 1,866,240,000 fact rows.
func APB1() *Star { return schema.APB1() }

// APB1Scaled returns a reduced-cardinality APB-1 for in-memory execution.
func APB1Scaled(factor int) *Star { return schema.APB1Scaled(factor) }

// TinySchema returns a minimal APB-1-shaped schema for experimentation.
func TinySchema() *Star { return schema.Tiny() }

// Fragmentation types.
type (
	// Fragmentation is an MDHF fragmentation specification.
	Fragmentation = frag.Spec
	// FragAttr is one fragmentation attribute (dimension and level index).
	FragAttr = frag.Attr
	// Query is a star query: a conjunction of point predicates plus an
	// optional GROUP BY (one or more hierarchy levels).
	Query = frag.Query
	// Pred is one query predicate.
	Pred = frag.Pred
	// LevelRef names one hierarchy level of one dimension — a GROUP BY
	// item.
	LevelRef = frag.LevelRef
	// QueryClass is the paper's Q1-Q4 query classification.
	QueryClass = frag.QueryClass
	// IOClass is the paper's I/O overhead classification.
	IOClass = frag.IOClass
	// Thresholds are the admissibility limits of the Section 4.7 guidelines.
	Thresholds = frag.Thresholds
	// IndexConfig assigns a bitmap index kind to each dimension.
	IndexConfig = frag.IndexConfig
	// IndexSpec configures one dimension's bitmap index.
	IndexSpec = frag.IndexSpec
)

// Query and I/O classes.
const (
	Q1          = frag.Q1
	Q2          = frag.Q2
	Q3          = frag.Q3
	Q4          = frag.Q4
	Unsupported = frag.Unsupported

	IOC1Opt    = frag.IOC1Opt
	IOC1       = frag.IOC1
	IOC2       = frag.IOC2
	IOC2NoSupp = frag.IOC2NoSupp

	SimpleIndexes = frag.SimpleIndexes
	EncodedIndex  = frag.EncodedIndex
)

// NewFragmentation builds a fragmentation from attribute indices.
func NewFragmentation(star *Star, attrs []FragAttr) (*Fragmentation, error) {
	return frag.New(star, attrs)
}

// Range fragmentation (the general MDHF of Section 4.1; the paper's
// evaluation — and this library's simulator and engines — focus on the
// point special case, but RangeFragmentation provides the confinement and
// bitmap-need analysis for arbitrary value-range partitionings).
type (
	// RangeFragmentation is a general multi-dimensional hierarchical range
	// fragmentation.
	RangeFragmentation = frag.RangeSpec
	// RangeFragAttr is one range-partitioned fragmentation attribute.
	RangeFragAttr = frag.RangeAttr
)

// NewRangeFragmentation builds and validates a range fragmentation.
func NewRangeFragmentation(star *Star, attrs []RangeFragAttr) (*RangeFragmentation, error) {
	return frag.NewRange(star, attrs)
}

// UniformRanges splits a hierarchy level's domain into n equal ranges.
func UniformRanges(star *Star, dim, level, n int) RangeFragAttr {
	return frag.UniformRanges(star, dim, level, n)
}

// ParseFragmentation parses the paper's notation, e.g.
// "time::month, product::group".
func ParseFragmentation(star *Star, text string) (*Fragmentation, error) {
	return frag.Parse(star, text)
}

// ParseQuery parses "dim::level=member, ..." notation with an optional
// trailing "group by dim::level, ..." clause.
func ParseQuery(star *Star, text string) (Query, error) {
	return frag.ParseQuery(star, text)
}

// FormatQuery renders a query in the ParseQuery notation (round-trips
// exactly).
func FormatQuery(star *Star, q Query) string {
	return frag.Format(star, q)
}

// EnumerateFragmentations lists every point fragmentation of the schema
// (167 for APB-1).
func EnumerateFragmentations(star *Star) []*Fragmentation {
	return frag.Enumerate(star)
}

// MaxFragments is the paper's nmax threshold (Section 4.4).
func MaxFragments(star *Star, prefetchGran int) int64 {
	return frag.MaxFragments(star, prefetchGran)
}

// APB1Indexes returns the paper's bitmap index configuration (76 bitmaps).
func APB1Indexes(star *Star) IndexConfig { return frag.APB1Indexes(star) }

// MaxBitmaps counts the bitmaps materialised without fragmentation.
func MaxBitmaps(star *Star, cfg IndexConfig) int { return frag.MaxBitmaps(star, cfg) }

// Cost model.
type (
	// QueryCost is an analytical I/O cost estimate.
	QueryCost = cost.QueryCost
	// CostParams are the prefetch parameters of the cost model.
	CostParams = cost.Params
	// WeightedQuery is one query-mix entry for the advisor.
	WeightedQuery = cost.WeightedQuery
	// Ranked is one advisor candidate.
	Ranked = cost.Ranked
)

// DefaultCostParams returns the paper's prefetch settings (8/5 pages).
func DefaultCostParams() CostParams { return cost.DefaultParams() }

// EstimateCost estimates the I/O work of a query under a fragmentation.
func EstimateCost(spec *Fragmentation, cfg IndexConfig, q Query, p CostParams) QueryCost {
	return cost.Estimate(spec, cfg, q, p)
}

// Advise ranks admissible fragmentations by total I/O work over a query
// mix (the guidelines of Section 4.7), analysing candidates on one worker
// per available CPU.
func Advise(star *Star, cfg IndexConfig, mix []WeightedQuery, th Thresholds, p CostParams) []Ranked {
	return cost.Advise(star, cfg, mix, th, p)
}

// Allocation.
type (
	// Placement maps fragments to disks.
	Placement = alloc.Placement
	// AllocScheme selects the fact placement function.
	AllocScheme = alloc.Scheme
)

// Allocation schemes.
const (
	RoundRobin    = alloc.RoundRobin
	GapRoundRobin = alloc.GapRoundRobin
)

// DisksUsed returns the fact-I/O parallelism of a query under a placement.
func DisksUsed(spec *Fragmentation, q Query, p Placement) int {
	return alloc.DisksUsed(spec, q, p)
}

// Declustered storage: the multi-disk model making the allocation schemes
// executable. A DiskSet is D virtual disks with serialized per-disk I/O
// queues; DeclusterStore shards a store and its bitmap file across one.
type (
	// DiskSet models D disks, each a serialized I/O queue with its own
	// simulated access delay.
	DiskSet = storage.DiskSet
	// DiskStats is one disk's access counters.
	DiskStats = storage.DiskStats
	// DiskParams configures the per-disk queue response model.
	DiskParams = cost.DiskParams
	// ResponseEstimate is a modelled query response under a placement.
	ResponseEstimate = cost.ResponseEstimate
	// DiskRanked is one disk-configuration candidate of AdviseDisks.
	DiskRanked = cost.DiskRanked
)

// NewDiskSet builds a set of d idle virtual disks.
func NewDiskSet(d int) *DiskSet { return storage.NewDiskSet(d) }

// Fault tolerance: deterministic fault injection on the disk set, typed
// fault errors, and the retry/circuit-breaker policy every physical read
// runs under (see WithFaultPlan, WithRetryPolicy, WithAdmissionLimit and
// WithQueryDeadline).
type (
	// FaultPlan is a deterministic, seedable disk-fault plan: transient
	// read errors, latency spikes, corrupt pages, and sticky disk
	// failures.
	FaultPlan = storage.FaultPlan
	// FaultError is the typed error wrapping every physical-read failure
	// with its disk, file, fragment, offset and fault kind; unwrap with
	// errors.As.
	FaultError = storage.FaultError
	// FaultKind classifies a FaultError.
	FaultKind = storage.FaultKind
	// RetryPolicy bounds the retry/backoff/circuit-breaker behaviour of
	// physical reads.
	RetryPolicy = storage.RetryPolicy
)

// Fault kinds.
const (
	// FaultTransient is a read error that may succeed on retry.
	FaultTransient = storage.FaultTransient
	// FaultChecksum is a page whose CRC32C did not match.
	FaultChecksum = storage.FaultChecksum
	// FaultDiskFailed is a read against a disk marked failed.
	FaultDiskFailed = storage.FaultDiskFailed
	// FaultBreakerOpen is a read refused because the disk's circuit
	// breaker is open (not retried: fail fast).
	FaultBreakerOpen = storage.FaultBreakerOpen
)

// ErrOverloaded is returned by Execute when the warehouse's admission
// limit is reached and the execution is shed (see WithAdmissionLimit).
var ErrOverloaded = exec.ErrOverloaded

// DefaultRetryPolicy returns the retry policy physical reads run under
// when WithRetryPolicy is not given: 6 attempts with full-jitter
// exponential backoff, breaker opening after 3 consecutively exhausted
// reads.
func DefaultRetryPolicy() RetryPolicy { return storage.DefaultRetryPolicy() }

// SetChecksumVerification toggles page-checksum verification on reads
// globally (default on). Disabling it is meant for measuring the
// checksum overhead in benchmarks, not for production use.
func SetChecksumVerification(on bool) { storage.SetChecksumVerification(on) }

// DeclusterStore shards a store's fact fragments and its bitmap file's
// bitmap fragments across one new DiskSet per the placement (Figure 2:
// round-robin or gap fact placement, staggered or co-located bitmaps).
// Subsequent executions route every physical read through its disk's
// serialized queue and dispatch fragment tasks disk-aware with work
// stealing; results stay byte-identical to the single-disk path at every
// disk and worker count. Set the returned DiskSet's IODelay to make disk
// contention observable, and read its Stats for per-disk load balance.
//
// The operation is atomic: the placement and the store/bitmap-file
// pairing are validated before either component is modified, so a
// failure never leaves the pair half-declustered. (Open with WithDisks
// performs the same declustering as part of assembling a Warehouse.)
func DeclusterStore(s *Store, bf *BitmapFile, p Placement) (*DiskSet, error) {
	return storage.Decluster(s, bf, p)
}

// EstimateResponse models a query's response time under a placement with
// serialized per-disk queues: the analytical I/O counts of EstimateCost
// are routed to disks per the placement and the bottleneck queue bounds
// the response.
func EstimateResponse(spec *Fragmentation, cfg IndexConfig, q Query, p CostParams, dp DiskParams) ResponseEstimate {
	return cost.EstimateResponse(spec, cfg, q, p, dp)
}

// AdviseDisks ranks disk counts and placement schemes for a query mix by
// the modelled bottleneck-queue response time — the physical-layer
// counterpart of Advise.
func AdviseDisks(spec *Fragmentation, cfg IndexConfig, mix []WeightedQuery, p CostParams, dp DiskParams, diskCounts []int) []DiskRanked {
	return cost.AdviseDisks(spec, cfg, mix, p, dp, diskCounts)
}

// Simulation.
type (
	// SimConfig holds SIMPAD parameters (Table 4 defaults).
	SimConfig = simpad.Config
	// SimSystem is one simulated Shared Disk PDBS.
	SimSystem = simpad.System
	// SimPlan is a physical star query execution plan.
	SimPlan = simpad.Plan
	// SimResult is one simulated query execution.
	SimResult = simpad.Result
)

// DefaultSimConfig returns the paper's simulation parameters (Table 4).
func DefaultSimConfig() SimConfig { return simpad.DefaultConfig() }

// NewSimSystem builds a simulated PDBS.
func NewSimSystem(cfg SimConfig, icfg IndexConfig, placement Placement, seed int64) (*SimSystem, error) {
	return simpad.NewSystem(cfg, icfg, placement, seed)
}

// NewSimPlan derives the execution plan of a query.
func NewSimPlan(spec *Fragmentation, icfg IndexConfig, q Query, cfg SimConfig) *SimPlan {
	return simpad.NewPlan(spec, icfg, q, cfg)
}

// Execution engine.
type (
	// FactTable is a generated in-memory fact table.
	FactTable = data.Table
	// Engine executes star queries over fragmented fact data.
	Engine = engine.Engine
	// Aggregate is a star query result: COUNT plus the three APB-1
	// measure sums. Every backend accumulates into this one shared
	// kernel type.
	Aggregate = engine.Aggregate
	// EngineStats reports work performed by a query execution.
	EngineStats = engine.Stats
	// Result is a full query result: the grand total (embedded) plus, for
	// grouped queries, the per-group rows in deterministic order
	// (ascending lexicographically in the GROUP BY member tuple).
	Result = kernel.Result
	// GroupRow is one group of a grouped result: the member index per
	// GROUP BY level plus the group's aggregate.
	GroupRow = kernel.Row
	// SharedScanStats reports one execution's shared-scan batching effect
	// (see Stats.SharedScan and WithSharedScans).
	SharedScanStats = kernel.SharedScanStats
	// SharedCost predicts the shared-scan physical-read reduction for a
	// query batched against a mix (see Explain.Shared).
	SharedCost = cost.SharedCost
)

// GenerateData builds a deterministic fact table for the schema.
func GenerateData(star *Star, seed int64) (*FactTable, error) {
	return data.Generate(star, seed)
}

// BuildEngine fragments the table and constructs per-fragment bitmap
// indices.
func BuildEngine(t *FactTable, spec *Fragmentation, icfg IndexConfig) (*Engine, error) {
	return engine.Build(t, spec, icfg)
}

// BuildCompressedEngine is BuildEngine storing every per-fragment bitmap
// WAH-compressed (the space reduction of Section 3.2) and executing
// queries directly on the compressed words: each fragment's predicates
// intersect in a single k-way run-skipping AndAll and the hit rows stream
// out of the compressed result, never materialising an uncompressed
// bitmap.
func BuildCompressedEngine(t *FactTable, spec *Fragmentation, icfg IndexConfig) (*Engine, error) {
	return engine.BuildCompressed(t, spec, icfg)
}

// ScanAggregate computes a query's grand total by naive full scan (the
// engine's correctness oracle). Any GROUP BY is ignored; use
// ScanGroupedAggregate for the grouped oracle.
func ScanAggregate(t *FactTable, q Query) Aggregate {
	return engine.Scan(t, q)
}

// ScanGroupedAggregate computes the full (grouped) query result by naive
// scan with per-row bucketing — the brute-force oracle every grouped
// execution path is checked against.
func ScanGroupedAggregate(t *FactTable, q Query) (Result, error) {
	return engine.ScanGrouped(t, q)
}

// Workload.
type (
	// QueryType is a named star query template.
	QueryType = workload.QueryType
	// QueryGenerator produces queries with random parameters.
	QueryGenerator = workload.Generator
)

// The paper's query types.
var (
	OneStore           = workload.OneStore
	OneMonth           = workload.OneMonth
	OneCode            = workload.OneCode
	OneGroup           = workload.OneGroup
	OneQuarter         = workload.OneQuarter
	OneMonthOneGroup   = workload.OneMonthOneGroup
	OneCodeOneMonth    = workload.OneCodeOneMonth
	OneCodeOneQuarter  = workload.OneCodeOneQuarter
	OneGroupOneQuarter = workload.OneGroupOneQuarter
	OneGroupOneStore   = workload.OneGroupOneStore
)

// NewQueryGenerator returns a deterministic query generator.
func NewQueryGenerator(star *Star, seed int64) *QueryGenerator {
	return workload.NewGenerator(star, seed)
}

// Skewed data generation (the paper's future-work data skew study).
type SkewConfig = data.SkewConfig

// UniformSkew returns a no-skew configuration.
func UniformSkew(star *Star) SkewConfig { return data.UniformSkew(star) }

// GenerateSkewedData builds a fact table with Zipf-skewed member
// frequencies.
func GenerateSkewedData(star *Star, seed int64, skew SkewConfig) (*FactTable, error) {
	return data.GenerateSkewed(star, seed, skew)
}

// Simulator architectures (Shared Nothing is the footnote-3 extension).
const (
	SharedDisk    = simpad.SharedDisk
	SharedNothing = simpad.SharedNothing
)

// On-disk storage.
type (
	// Store is a paged on-disk fact table fragmented per an MDHF spec.
	Store = storage.Store
	// BitmapFile stores the surviving bitmap fragments.
	BitmapFile = storage.BitmapFile
	// StorageExecutor runs star queries against the files with real
	// prefetch-granule I/O.
	StorageExecutor = storage.Executor
	// StorageIOStats counts the physical I/O of an execution.
	StorageIOStats = storage.IOStats
	// BufferPool is the granule/page buffer pool between the executor's
	// read paths and the disks (see WithBufferPool).
	BufferPool = storage.BufPool
	// PoolStats is the buffer pool's counter snapshot.
	PoolStats = storage.PoolStats
	// CacheCost is Explain's predicted buffer-pool effect on one query.
	CacheCost = cost.CacheCost
)

// BuildStore writes the fragmented fact table into dir.
func BuildStore(dir string, t *FactTable, spec *Fragmentation) (*Store, error) {
	return storage.Build(dir, t, spec)
}

// OpenStore reopens a previously built store.
func OpenStore(dir string, star *Star, spec *Fragmentation) (*Store, error) {
	return storage.Open(dir, star, spec)
}

// BuildBitmapFile constructs and persists the surviving bitmap fragments.
func BuildBitmapFile(dir string, s *Store, icfg IndexConfig) (*BitmapFile, error) {
	return storage.BuildBitmaps(dir, s, icfg)
}

// BuildCompressedBitmapFile is BuildBitmapFile with WAH compression (the
// space reduction the paper mentions in Section 3.2).
func BuildCompressedBitmapFile(dir string, s *Store, icfg IndexConfig) (*BitmapFile, error) {
	return storage.BuildCompressedBitmaps(dir, s, icfg)
}

// NewStorageExecutor pairs a store with its bitmap file. The executor
// fans the relevant fragments of each query out over one worker per
// available CPU; set its Workers field for an explicit count. Results
// are identical at any worker count.
func NewStorageExecutor(s *Store, bf *BitmapFile) *StorageExecutor {
	return storage.NewExecutor(s, bf)
}

// Dimension tables.
type (
	// DimCatalog holds the denormalized dimension tables with B+-tree
	// indices and resolves name-level queries.
	DimCatalog = dimtable.Catalog
	// DimTable is one dimension table.
	DimTable = dimtable.Table
)

// BuildDimCatalog materialises the dimension tables of the schema.
func BuildDimCatalog(star *Star) *DimCatalog { return dimtable.BuildCatalog(star) }
