package mdhf

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
)

// clusterOracle executes every ingest query on a plain single-node
// Warehouse over the given rows — the reference every cluster result
// must match byte-identically.
func clusterOracle(t *testing.T, star *Star, tab *FactTable) []Result {
	t.Helper()
	ctx := context.Background()
	w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group", Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	out := make([]Result, len(ingestQueries))
	for i, text := range ingestQueries {
		pq, err := w.QueryText(text)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := pq.Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res
	}
	return out
}

// checkCluster runs every ingest query on the cluster and compares each
// result to the oracle's.
func checkCluster(t *testing.T, c *Cluster, want []Result, leg string) {
	t.Helper()
	ctx := context.Background()
	for i, text := range ingestQueries {
		cq, err := c.QueryText(text)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := cq.Execute(ctx)
		if err != nil {
			t.Fatalf("%s: query %q: %v", leg, text, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("%s: query %q: cluster %+v != warehouse %+v", leg, text, got, want[i])
		}
		if st.Backend != ClusterBackend {
			t.Fatalf("%s: backend %v", leg, st.Backend)
		}
		if st.Cluster == nil || st.Cluster.NodesUsed < 1 || st.Cluster.NodesUsed > c.Nodes() {
			t.Fatalf("%s: query %q: bad fan-out stats %+v", leg, text, st.Cluster)
		}
	}
}

// TestClusterEquivalenceMatrix is the acceptance matrix: every ingest
// query (Q1-Q4, grouped and ungrouped) over node counts 1/2/4/8 and both
// ownership schemes, with appends mid-flight (awaited), a compaction
// leg, and an injected node fault — byte-identical to a single Warehouse
// over the same rows throughout. Run with -race.
func TestClusterEquivalenceMatrix(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	n := full.N()
	base := prefixTable(full, n*2/3)
	extra := splitRows(full, n*2/3, n)
	wantBase := clusterOracle(t, star, base)
	wantFull := clusterOracle(t, star, full)

	for _, scheme := range []AllocScheme{RoundRobin, GapRoundRobin} {
		for _, nodes := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("scheme=%v/nodes=%d", scheme, nodes), func(t *testing.T) {
				c, err := OpenCluster(ctx,
					Config{Star: star, Fragmentation: "time::month, product::group", Table: base},
					WithNodes(nodes, scheme))
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()

				checkCluster(t, c, wantBase, "base")
				if err := c.Append(ctx, extra); err != nil {
					t.Fatal(err)
				}
				checkCluster(t, c, wantFull, "appended")
				if err := c.Compact(ctx); err != nil {
					t.Fatal(err)
				}
				checkCluster(t, c, wantFull, "compacted")

				// Injected fault: a cluster-wide query fails with a typed
				// NodeError naming the victim; never a wrong answer.
				victim := nodes - 1
				if err := c.FailNode(victim); err != nil {
					t.Fatal(err)
				}
				cq, err := c.QueryText("")
				if err != nil {
					t.Fatal(err)
				}
				_, _, err = cq.Execute(ctx)
				if !errors.Is(err, ErrNodeFailed) {
					t.Fatalf("failed node: got %v, want ErrNodeFailed", err)
				}
				var ne *NodeError
				if !errors.As(err, &ne) || ne.Node != victim {
					t.Fatalf("error does not name node %d: %v", victim, err)
				}
				if err := c.ReviveNode(victim); err != nil {
					t.Fatal(err)
				}
				checkCluster(t, c, wantFull, "revived")
			})
		}
	}
}

// TestClusterHTTPFacade runs the facade over real loopback HTTP servers
// (WithNodeAddrs) and checks equivalence plus append routing — the real-
// transport leg of the matrix. Short-mode friendly: loopback only.
func TestClusterHTTPFacade(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	n := full.N()
	base := prefixTable(full, n*2/3)
	extra := splitRows(full, n*2/3, n)
	wantBase := clusterOracle(t, star, base)
	wantFull := clusterOracle(t, star, full)

	const nodes = 4
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	cl := Placement{Disks: nodes, Scheme: GapRoundRobin}
	shards := PartitionFactTable(spec, cl, base)
	addrs := make([]string, nodes)
	for k := 0; k < nodes; k++ {
		node, err := NewClusterNode(ClusterNodeConfig{
			Spec: spec, Indexes: APB1Indexes(star), Index: k, Cluster: cl,
		}, shards[k])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		srv := httptest.NewServer(NewNodeHandler(node))
		t.Cleanup(srv.Close)
		addrs[k] = srv.URL
	}

	c, err := OpenCluster(ctx,
		Config{Star: star, Fragmentation: "time::month, product::group"},
		WithNodes(nodes, GapRoundRobin), WithNodeAddrs(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	checkCluster(t, c, wantBase, "http/base")
	if err := c.Append(ctx, extra); err != nil {
		t.Fatal(err)
	}
	checkCluster(t, c, wantFull, "http/appended")
	if err := c.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	checkCluster(t, c, wantFull, "http/compacted")

	st, err := c.ServingStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != nodes || len(st.Client) != nodes {
		t.Fatalf("stats for %d/%d nodes, want %d", len(st.Nodes), len(st.Client), nodes)
	}
	var appended, queries int64
	for k, ns := range st.Nodes {
		if ns.Index != k {
			t.Errorf("node %d reports index %d", k, ns.Index)
		}
		appended += ns.AppendedRows
		queries += ns.Queries
		if ns.Compactions < 1 {
			t.Errorf("node %d: no compactions recorded", k)
		}
	}
	if appended != int64(len(extra)) {
		t.Errorf("cluster-wide AppendedRows = %d, want %d", appended, len(extra))
	}
	if queries == 0 {
		t.Error("no node-side query counters")
	}
	// FailNode is an in-process affordance; over HTTP it must refuse.
	if err := c.FailNode(0); err == nil {
		t.Error("FailNode over WithNodeAddrs should error")
	}
}

// TestClusterServingStats checks the local facade's cluster-wide
// counters: per-node queries and ingestion on the owning nodes only, and
// the coordinator's client-side accounting.
func TestClusterServingStats(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	c, err := OpenCluster(ctx,
		Config{Star: star, Fragmentation: "time::month, product::group", Table: tab},
		WithNodes(4, RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cq, err := c.QueryText("")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cq.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	rows := splitRows(tab, 0, 3)
	if err := c.Append(ctx, rows); err != nil {
		t.Fatal(err)
	}
	st, err := c.ServingStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var queries, appended, clientQueries int64
	for _, ns := range st.Nodes {
		queries += ns.Queries
		appended += ns.AppendedRows
	}
	for _, cs := range st.Client {
		clientQueries += cs.Queries
	}
	if queries != 4 {
		t.Errorf("node-side Queries = %d, want 4 (cluster-wide scatter)", queries)
	}
	if clientQueries != 4 {
		t.Errorf("client-side Queries = %d, want 4", clientQueries)
	}
	if appended != 3 {
		t.Errorf("AppendedRows = %d, want 3", appended)
	}
}

// TestClusterExplainNodeBottleneck is the response-model fix: with more
// than one node the modelled queues are two-tier (node-major
// node×disk), the reported bottleneck is a node's own deepest disk, and
// the response never benefits from pooling disks across nodes.
func TestClusterExplainNodeBottleneck(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	open := func(nodes, disks int) *Cluster {
		c, err := OpenCluster(ctx,
			Config{Star: star, Fragmentation: "time::month, product::group"},
			WithNodes(nodes, RoundRobin), WithDisks(disks, RoundRobin))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	explain := func(c *Cluster, text string) Explain {
		cq, err := c.QueryText(text)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := cq.Explain(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return ex
	}

	const q = "time::quarter=1 group by product::group"
	four := explain(open(4, 2), q)
	if four.Response.Nodes != 4 {
		t.Fatalf("Nodes = %d, want 4", four.Response.Nodes)
	}
	if got, want := len(four.Response.DiskIOs), 4*2; got != want {
		t.Fatalf("%d disk queues, want %d (node-major node x disk)", got, want)
	}
	if len(four.Response.NodeIOs) != 4 {
		t.Fatalf("NodeIOs over %d nodes, want 4", len(four.Response.NodeIOs))
	}
	bn := four.Response.BottleneckNode
	if bn < 0 || bn >= 4 {
		t.Fatalf("BottleneckNode = %d out of range", bn)
	}
	if four.Response.NodeIOs[bn] == 0 {
		t.Fatal("bottleneck node received no I/O")
	}

	// The node-bottleneck response is never better than a hypothetical
	// global pool of the same nodes*disks queues would allow: 8 queues
	// on one node lower-bounds 4 nodes x 2 disks.
	pooled := explain(open(1, 8), q)
	if four.Response.Response < pooled.Response.Response {
		t.Errorf("4x2 response %v beats pooled 1x8 %v; node bottleneck must not pool across nodes",
			four.Response.Response, pooled.Response.Response)
	}
	if pooled.Response.Nodes != 1 || pooled.Response.NodesUsed != 1 {
		t.Errorf("single node models %d/%d nodes", pooled.Response.Nodes, pooled.Response.NodesUsed)
	}
}
