package mdhf

import (
	"testing"

	"repro/internal/frag"
	"repro/internal/kernel"
)

// rcSpec builds the standard test fragmentation and parses helper queries
// directly against the internal frag package (the cache stores their
// Relevant regions).
func rcSpec(t *testing.T) (*frag.Spec, func(string) (string, frag.Region)) {
	t.Helper()
	star := TinySchema()
	spec, err := frag.Parse(star, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	return spec, func(text string) (string, frag.Region) {
		q, err := frag.ParseQuery(star, text)
		if err != nil {
			t.Fatal(err)
		}
		return frag.Format(star, q), spec.Relevant(q)
	}
}

func rcResult(units int64) Result {
	return Result{
		Aggregate: kernel.Aggregate{Count: 1, UnitsSold: units},
		Groups:    []kernel.Row{{Members: []int{int(units)}, Agg: kernel.Aggregate{UnitsSold: units}}},
	}
}

func TestResCacheGetValidatesState(t *testing.T) {
	_, mk := rcSpec(t)
	text, region := mk("time::month=1")
	c := newResCache(4)
	c.put(text, 0, 5, region, rcResult(10), 2)
	if e := c.get(text, 0, 5); e == nil || e.deltaRows != 2 {
		t.Fatal("valid-state lookup missed")
	}
	if e := c.get(text, 1, 5); e != nil {
		t.Fatal("hit across epochs")
	}
	if e := c.get(text, 0, 6); e != nil {
		t.Fatal("hit across delta sequences")
	}
	if e := c.get("other", 0, 5); e != nil {
		t.Fatal("hit on absent text")
	}
}

func TestResCacheLRUCapacity(t *testing.T) {
	_, mk := rcSpec(t)
	texts := []string{"time::month=1", "time::month=2", "time::month=3"}
	c := newResCache(2)
	var regions []frag.Region
	var keys []string
	for _, q := range texts {
		text, region := mk(q)
		keys = append(keys, text)
		regions = append(regions, region)
	}
	c.put(keys[0], 0, 0, regions[0], rcResult(1), 0)
	c.put(keys[1], 0, 0, regions[1], rcResult(2), 0)
	// Refresh keys[0] so keys[1] is the LRU victim.
	if c.get(keys[0], 0, 0) == nil {
		t.Fatal("refresh miss")
	}
	c.put(keys[2], 0, 0, regions[2], rcResult(3), 0)
	if c.get(keys[1], 0, 0) != nil {
		t.Fatal("LRU entry survived capacity eviction")
	}
	if c.get(keys[0], 0, 0) == nil || c.get(keys[2], 0, 0) == nil {
		t.Fatal("recently used entries evicted")
	}
	if len(c.entries) != 2 {
		t.Fatalf("entries %d, want 2", len(c.entries))
	}
	// Overwriting an existing key must not grow the cache.
	c.put(keys[2], 0, 1, regions[2], rcResult(4), 0)
	if len(c.entries) != 2 {
		t.Fatalf("entries after overwrite %d, want 2", len(c.entries))
	}
	if e := c.get(keys[2], 0, 1); e == nil || e.res.UnitsSold != 4 {
		t.Fatal("overwrite did not replace the entry")
	}
}

// TestResCacheInvalidateFragmentGranular is the core append rule: only
// entries whose confinement region contains a touched fragment are
// evicted; everything else is re-keyed to the new MaxSeq and keeps
// hitting.
func TestResCacheInvalidateFragmentGranular(t *testing.T) {
	spec, mk := rcSpec(t)
	m1, rm1 := mk("time::month=1")
	m2, rm2 := mk("time::month=2")
	all, rall := mk("") // full scan: every fragment is relevant

	// A fragment inside month 1's slice (and the full scan), outside
	// month 2's.
	var touched int64 = -1
	for id := int64(0); id < spec.NumFragments(); id++ {
		coord := spec.Coord(id)
		if regionTouches(rm1, [][]int{coord}) && !regionTouches(rm2, [][]int{coord}) {
			touched = id
			break
		}
	}
	if touched < 0 {
		t.Fatal("no fragment separates month 1 from month 2")
	}

	c := newResCache(8)
	c.put(m1, 0, 5, rm1, rcResult(1), 0)
	c.put(m2, 0, 5, rm2, rcResult(2), 0)
	c.put(all, 0, 5, rall, rcResult(3), 0)
	c.invalidate(spec, []int64{touched}, 9)

	if c.get(m1, 0, 9) != nil {
		t.Fatal("touched entry survived the append")
	}
	if c.get(all, 0, 9) != nil {
		t.Fatal("full-scan entry survived an append")
	}
	e := c.get(m2, 0, 9)
	if e == nil {
		t.Fatal("untouched entry was not re-keyed to the new MaxSeq")
	}
	if e.res.UnitsSold != 2 {
		t.Fatal("re-keyed entry result changed")
	}
	if c.get(m2, 0, 5) != nil {
		t.Fatal("untouched entry still valid under the old MaxSeq")
	}
	if c.invalidations != 2 || c.rekeys == 0 {
		t.Fatalf("counters: invalidations %d (want 2), rekeys %d (want >0)", c.invalidations, c.rekeys)
	}
}

func TestResCacheInvalidatePoisonsPending(t *testing.T) {
	spec, mk := rcSpec(t)
	m1, rm1 := mk("time::month=1")
	m2, rm2 := mk("time::month=2")
	var touched int64 = -1
	for id := int64(0); id < spec.NumFragments(); id++ {
		coord := spec.Coord(id)
		if regionTouches(rm1, [][]int{coord}) && !regionTouches(rm2, [][]int{coord}) {
			touched = id
			break
		}
	}
	c := newResCache(8)
	pd1 := &resPending{text: m1, epoch: 0, maxSeq: 5, region: rm1, done: make(chan struct{})}
	pd2 := &resPending{text: m2, epoch: 0, maxSeq: 5, region: rm2, done: make(chan struct{})}
	c.pending[m1] = pd1
	c.pending[m2] = pd2
	c.invalidate(spec, []int64{touched}, 9)
	if !pd1.poisoned {
		t.Fatal("intersecting pending computation not poisoned")
	}
	if pd2.poisoned {
		t.Fatal("disjoint pending computation poisoned")
	}
	if pd2.maxSeq != 9 {
		t.Fatalf("disjoint pending maxSeq %d, want re-keyed to 9", pd2.maxSeq)
	}
	if pd1.maxSeq != 5 {
		t.Fatalf("poisoned pending maxSeq %d, want frozen at 5", pd1.maxSeq)
	}
}

// TestResCacheRekeyAll is the compaction rule: result-neutral, so every
// entry and non-poisoned pending carries over to the new epoch's state.
func TestResCacheRekeyAll(t *testing.T) {
	_, mk := rcSpec(t)
	m1, rm1 := mk("time::month=1")
	m2, rm2 := mk("time::month=2")
	c := newResCache(8)
	c.put(m1, 0, 5, rm1, rcResult(1), 5)
	pdLive := &resPending{text: m2, epoch: 0, maxSeq: 5, region: rm2, done: make(chan struct{})}
	pdDead := &resPending{text: "x", epoch: 0, maxSeq: 5, poisoned: true, done: make(chan struct{})}
	c.pending[m2] = pdLive
	c.pending["x"] = pdDead
	c.rekeyAll(1, 0)
	if c.get(m1, 0, 5) != nil {
		t.Fatal("entry still valid under retired epoch")
	}
	if c.get(m1, 1, 0) == nil {
		t.Fatal("entry not carried to the new epoch")
	}
	if pdLive.epoch != 1 || pdLive.maxSeq != 0 {
		t.Fatalf("live pending not re-keyed: epoch %d maxSeq %d", pdLive.epoch, pdLive.maxSeq)
	}
	if pdDead.epoch != 0 {
		t.Fatal("poisoned pending re-keyed")
	}
}

// TestCopyResultIsolation guards the deep copy: cache residents must not
// alias caller-visible slices.
func TestCopyResultIsolation(t *testing.T) {
	orig := rcResult(7)
	cp := copyResult(orig)
	cp.Groups[0].Members[0] = 99
	cp.Groups[0].Agg.UnitsSold = 99
	if orig.Groups[0].Members[0] != 7 {
		t.Fatal("copy aliases Members")
	}
	if orig.Groups[0].Agg.UnitsSold != 7 {
		t.Fatal("copy aliases Groups")
	}
	if n := copyResult(Result{}); n.Groups != nil {
		t.Fatal("nil groups grew a slice")
	}
}
