package mdhf

// Benchmarks for the fragment-parallel execution subsystem (internal/exec):
// the on-disk storage executor and the in-memory engine at 1/2/4/8 workers
// on the reduced-scale APB-1 store. The sequential/parallel results are
// asserted identical before timing, so the speed-up numbers measure the
// scatter/gather pool, not divergent work.

import (
	"fmt"
	"testing"
	"time"
)

// parallelBenchStore builds the reduced-scale APB-1 on-disk warehouse used
// by the worker-scaling benchmarks.
func parallelBenchStore(b *testing.B) (*Store, *BitmapFile, Query) {
	b.Helper()
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 3)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	store, err := BuildStore(dir, tab, spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	bf, err := BuildBitmapFile(dir, store, APB1Indexes(star))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { bf.Close() })
	// 1STORE is unsupported by FMonthGroup: it touches every fragment with
	// bitmap I/O — the widest fan-out the pool can parallelise.
	q, err := NewQueryGenerator(star, 7).Next(OneStore)
	if err != nil {
		b.Fatal(err)
	}
	return store, bf, q
}

// workerExecutor pairs a store with its bitmap file at an explicit
// fragment-worker count (the former NewParallelStorageExecutor).
func workerExecutor(s *Store, bf *BitmapFile, workers int) *StorageExecutor {
	ex := NewStorageExecutor(s, bf)
	ex.Workers = workers
	return ex
}

// BenchmarkExecutorParallel measures the on-disk executor's fragment
// parallelism: the same 1STORE query at 1, 2, 4 and 8 workers, in two
// regimes. "pagecache" reads straight from the OS page cache (CPU-bound:
// scales with physical cores). "diskmodel" adds the paper's Table 4
// per-access disk latency via SetIODelay, exposing the intra-query I/O
// parallelism of Section 4.3 — workers overlap disk waits, so it scales
// with the worker count even on a single CPU.
func BenchmarkExecutorParallel(b *testing.B) {
	store, bf, q := parallelBenchStore(b)
	seq := workerExecutor(store, bf, 1)
	wantAgg, wantSt, err := seq.Execute(q)
	if err != nil {
		b.Fatal(err)
	}
	regimes := []struct {
		name  string
		delay time.Duration
	}{
		{"pagecache", 0},
		// ~1 ms per access: a fast disk's seek+settle share at bench scale
		// (Table 4 models 10 ms seek + 2 ms settle at full scale).
		{"diskmodel", time.Millisecond},
	}
	for _, regime := range regimes {
		store.SetIODelay(regime.delay)
		bf.SetIODelay(regime.delay)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", regime.name, workers), func(b *testing.B) {
				ex := workerExecutor(store, bf, workers)
				gotAgg, gotSt, err := ex.Execute(q)
				if err != nil {
					b.Fatal(err)
				}
				if gotAgg != wantAgg || gotSt != wantSt {
					b.Fatalf("workers=%d diverged: %+v/%+v != %+v/%+v", workers, gotAgg, gotSt, wantAgg, wantSt)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := ex.Execute(q); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(wantSt.FactIOs+wantSt.BitmapIOs), "disk-accesses")
			})
		}
	}
	store.SetIODelay(0)
	bf.SetIODelay(0)
}

// BenchmarkEngineParallel is the in-memory counterpart on the same shared
// pool: the generated fact table, fragment bitmap indices, 1STORE.
func BenchmarkEngineParallel(b *testing.B) {
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 3)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := BuildEngine(tab, spec, APB1Indexes(star))
	if err != nil {
		b.Fatal(err)
	}
	q, err := NewQueryGenerator(star, 7).Next(OneStore)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Execute(q, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompressedPath compares the old materialised execution (every
// predicate bitmap inflated to a Bitset, AND-ed word by word) against the
// compressed fast path (one k-way run-skipping AndAll over WAH words,
// streaming aggregation) across the paper's query classes at 1 and 4
// workers — in memory on the engine and on disk through the storage
// executor. Results are asserted identical before timing.
func BenchmarkCompressedPath(b *testing.B) {
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 3)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		b.Fatal(err)
	}
	icfg := APB1Indexes(star)
	matEng, err := BuildEngine(tab, spec, icfg)
	if err != nil {
		b.Fatal(err)
	}
	compEng, err := BuildCompressedEngine(tab, spec, icfg)
	if err != nil {
		b.Fatal(err)
	}

	dir := b.TempDir()
	store, err := BuildStore(dir, tab, spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	plainBF, err := BuildBitmapFile(dir, store, icfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { plainBF.Close() })
	dirC := b.TempDir()
	storeC, err := BuildStore(dirC, tab, spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { storeC.Close() })
	compBF, err := BuildCompressedBitmapFile(dirC, storeC, icfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { compBF.Close() })

	gen := NewQueryGenerator(star, 7)
	// One query type per query class of Section 4.2 under the standard
	// FMonthGroup fragmentation: 1MONTH1GROUP=Q1, 1CODE1MONTH=Q2,
	// 1GROUP1QUARTER=Q3, 1CODE1QUARTER=Q4, plus the bitmap-heavy 1STORE.
	for _, qt := range []QueryType{OneMonthOneGroup, OneCodeOneMonth, OneGroupOneQuarter, OneCodeOneQuarter, OneStore} {
		q, err := gen.Next(qt)
		if err != nil {
			b.Fatal(err)
		}
		class := spec.Classify(q)
		wantAgg, _, err := matEng.Execute(q, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			for _, side := range []struct {
				name string
				eng  *Engine
			}{{"materialized", matEng}, {"compressed", compEng}} {
				gotAgg, _, err := side.eng.Execute(q, workers)
				if err != nil {
					b.Fatal(err)
				}
				if gotAgg != wantAgg {
					b.Fatalf("%s %s: %+v != %+v", qt.Name, side.name, gotAgg, wantAgg)
				}
				b.Run(fmt.Sprintf("engine/%s_%v/%s/workers=%d", qt.Name, class, side.name, workers), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := side.eng.Execute(q, workers); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			for _, side := range []struct {
				name string
				ex   *StorageExecutor
			}{
				{"materialized", workerExecutor(store, plainBF, workers)},
				{"compressed", workerExecutor(storeC, compBF, workers)},
			} {
				gotAgg, _, err := side.ex.Execute(q)
				if err != nil {
					b.Fatal(err)
				}
				if Aggregate(gotAgg) != wantAgg {
					b.Fatalf("%s storage %s: %+v != %+v", qt.Name, side.name, gotAgg, wantAgg)
				}
				b.Run(fmt.Sprintf("storage/%s_%v/%s/workers=%d", qt.Name, class, side.name, workers), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := side.ex.Execute(q); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
