package mdhf

// Benchmarks for the implemented future-work extensions: multi-user mode,
// clustering granules, Shared Nothing, skewed generation, WAH compression,
// and the on-disk storage executor.

import (
	"testing"

	"repro/internal/bitmap"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// BenchmarkExtMultiUser measures mean 1MONTH response times under 1, 2, 4
// and 8 concurrent query streams (multi-user mode, Section 7 future work).
func BenchmarkExtMultiUser(b *testing.B) {
	var s experiments.Series
	for i := 0; i < b.N; i++ {
		s = experiments.MultiUser(workload.OneMonth, []int{1, 2, 4, 8}, 1, 1)
	}
	for _, pt := range s.Points {
		switch pt.X {
		case 1:
			b.ReportMetric(pt.ResponseTime, "s-1stream")
		case 8:
			b.ReportMetric(pt.ResponseTime, "s-8streams")
		}
	}
}

// BenchmarkExtClusteringGranules measures the Section 6.3 fix: 1STORE
// under FMonthCode with clustering granules of 1, 6 and 30 fragments.
func BenchmarkExtClusteringGranules(b *testing.B) {
	if testing.Short() {
		b.Skip("full-scale simulation")
	}
	var s experiments.Series
	for i := 0; i < b.N; i++ {
		s = experiments.Clustering([]int{1, 6, 30}, 1)
	}
	for _, pt := range s.Points {
		switch pt.X {
		case 1:
			b.ReportMetric(pt.ResponseTime, "s-unclustered")
		case 30:
			b.ReportMetric(pt.ResponseTime, "s-cluster30")
		}
	}
}

// BenchmarkExtSharedNothing compares Shared Disk and Shared Nothing for
// the CPU-bound 1MONTH query.
func BenchmarkExtSharedNothing(b *testing.B) {
	var sd, sn float64
	for i := 0; i < b.N; i++ {
		sd, sn = experiments.ArchComparison(workload.OneMonth, 1)
	}
	b.ReportMetric(sd, "s-shared-disk")
	b.ReportMetric(sn, "s-shared-nothing")
}

// BenchmarkExtSkewedGeneration measures Zipf-skewed fact generation.
func BenchmarkExtSkewedGeneration(b *testing.B) {
	star := APB1Scaled(60)
	star.Density = 0.1
	skew := UniformSkew(star)
	skew.Theta[0] = 1.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSkewedData(star, int64(i), skew); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtWAHCompression measures WAH compression and compressed AND
// on a sparse product-code bitmap against the plain bitset AND.
func BenchmarkExtWAHCompression(b *testing.B) {
	const n = 1 << 20
	sparse := bitmap.New(n)
	for i := 0; i < n; i += 14_400 {
		sparse.Set(i)
	}
	dense := bitmap.New(n)
	for i := 0; i < n; i += 24 {
		dense.Set(i)
	}
	cs, cd := bitmap.Compress(sparse), bitmap.Compress(dense)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bitmap.And(cs, cd)
	}
	b.ReportMetric(float64(cs.Bytes())/float64(sparse.Bytes()), "sparse-ratio")
}

// BenchmarkExtStorageExecutor measures real page-I/O star query execution
// against an on-disk warehouse at reduced scale.
func BenchmarkExtStorageExecutor(b *testing.B) {
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 3)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		b.Fatal(err)
	}
	icfg := APB1Indexes(star)
	dir := b.TempDir()
	store, err := BuildStore(dir, tab, spec)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	bf, err := BuildBitmapFile(dir, store, icfg)
	if err != nil {
		b.Fatal(err)
	}
	defer bf.Close()
	ex := NewStorageExecutor(store, bf)
	q, err := NewQueryGenerator(star, 7).Next(OneCodeOneQuarter)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ex.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtBTreeLookup measures dimension-table name resolution.
func BenchmarkExtBTreeLookup(b *testing.B) {
	catalog := BuildDimCatalog(APB1())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := catalog.ParseQuery("time.month = 'MONTH-0003', product.group = 'GROUP-0042'")
		if err != nil {
			b.Fatal(err)
		}
		if len(q.Preds) != 2 {
			b.Fatal("bad query")
		}
	}
}
