// Quickstart: open a Warehouse over a small star schema, run star
// queries on the real parallel engine through the serving façade, and
// verify the results against a naive scan.
package main

import (
	"context"
	"fmt"
	"log"

	mdhf "repro"
)

func main() {
	ctx := context.Background()

	// A reduced-scale APB-1: same hierarchy shape, in-memory friendly,
	// fragmented the paper's flagship way — one fragment per (month,
	// product group) combination.
	star := mdhf.APB1Scaled(60)
	w, err := mdhf.Open(ctx, mdhf.Config{
		Star:          star,
		Fragmentation: "time::month, product::group",
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	spec := w.Fragmentation()
	icfg := w.Indexes()
	fmt.Printf("schema %s: %d fact rows over %d dimensions\n", star.Name, star.N(), len(star.Dims))
	fmt.Printf("fragmentation %s: %d fragments, %d bitmaps eliminated by MDHF\n",
		spec, spec.NumFragments(), mdhf.MaxBitmaps(star, icfg)-spec.SurvivingBitmaps(icfg))
	fmt.Printf("serving on %d shared workers\n\n", w.Workers())

	// The scan oracle needs the generated fact table.
	table, err := w.Table(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Run the paper's query types; any number of these could Execute
	// concurrently, multiplexed onto the shared pool with identical
	// results.
	gen := mdhf.NewQueryGenerator(star, 7)
	for _, qt := range []mdhf.QueryType{
		mdhf.OneMonthOneGroup,  // Q1: confined to exactly 1 fragment
		mdhf.OneCodeOneQuarter, // Q4: 3 fragments, suffix bitmaps only
		mdhf.OneStore,          // unsupported: all fragments
	} {
		q, err := gen.Next(qt)
		if err != nil {
			log.Fatal(err)
		}
		pq := w.Query(q)
		agg, stats, err := pq.Execute(ctx)
		if err != nil {
			log.Fatal(err)
		}
		check := mdhf.ScanAggregate(table, q)
		status := "OK"
		if agg.Aggregate != check {
			status = "MISMATCH"
		}
		fmt.Printf("%-14s class %-11s -> %6d rows, sum(DollarSales)=%d\n",
			qt.Name, pq.Class(), agg.Count, agg.DollarSales)
		fmt.Printf("               fragments %4d/%d, bitmaps read %3d, rows scanned %6d  [verify vs scan: %s]\n",
			stats.Engine.FragmentsProcessed, spec.NumFragments(), stats.Engine.BitmapsRead, stats.Engine.RowsScanned, status)
	}
}
