// Quickstart: build a small star schema warehouse, fragment it with MDHF,
// run star queries on the real parallel engine, and verify the results
// against a naive scan.
package main

import (
	"fmt"
	"log"

	mdhf "repro"
)

func main() {
	// A reduced-scale APB-1: same hierarchy shape, in-memory friendly.
	star := mdhf.APB1Scaled(60)
	fmt.Printf("schema %s: %d fact rows over %d dimensions\n", star.Name, star.N(), len(star.Dims))

	// The paper's flagship fragmentation: one fragment per (month, product
	// group) combination.
	spec, err := mdhf.ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fragmentation %s: %d fragments\n", spec, spec.NumFragments())

	// Generate data and build the fragmented warehouse with bitmap indices.
	table, err := mdhf.GenerateData(star, 42)
	if err != nil {
		log.Fatal(err)
	}
	icfg := mdhf.APB1Indexes(star)
	eng, err := mdhf.BuildEngine(table, spec, icfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine built: %d non-empty fragments, %d bitmaps eliminated by MDHF\n\n",
		eng.NumFragments(), mdhf.MaxBitmaps(star, icfg)-spec.SurvivingBitmaps(icfg))

	// Run the paper's query types on the shared fragment-parallel worker
	// pool — one worker per CPU (workers = 0); results are identical at
	// any worker count.
	workers := 0
	fmt.Printf("executing with %d fragment workers\n", mdhf.Workers(workers))
	gen := mdhf.NewQueryGenerator(star, 7)
	for _, qt := range []mdhf.QueryType{
		mdhf.OneMonthOneGroup,  // Q1: confined to exactly 1 fragment
		mdhf.OneCodeOneQuarter, // Q4: 3 fragments, suffix bitmaps only
		mdhf.OneStore,          // unsupported: all fragments
	} {
		q, err := gen.Next(qt)
		if err != nil {
			log.Fatal(err)
		}
		agg, stats, err := eng.Execute(q, workers)
		if err != nil {
			log.Fatal(err)
		}
		check := mdhf.ScanAggregate(table, q)
		status := "OK"
		if agg != check {
			status = "MISMATCH"
		}
		fmt.Printf("%-14s class %-11s -> %6d rows, sum(DollarSales)=%d\n",
			qt.Name, spec.Classify(q), agg.Count, agg.DollarSales)
		fmt.Printf("               fragments %4d/%d, bitmaps read %3d, rows scanned %6d  [verify vs scan: %s]\n",
			stats.FragmentsProcessed, eng.NumFragments(), stats.BitmapsRead, stats.RowsScanned, status)
	}
}
