// Warehouse: a full on-disk round trip through the serving façade —
// Open writes the MDHF-fragmented fact file and bitmap files to a
// temporary directory on first execution, name-level queries resolve
// through the B+-tree-indexed dimension tables, and every execution
// reports the physical I/O counts that the paper's Table 3 models
// analytically.
package main

import (
	"context"
	"fmt"
	"log"

	mdhf "repro"
)

func main() {
	ctx := context.Background()
	star := mdhf.APB1Scaled(60)

	// WithOnDisk("") stores the warehouse in a temporary directory owned
	// by the handle (removed on Close); WithWorkers(0) serves on one
	// worker per CPU.
	w, err := mdhf.Open(ctx, mdhf.Config{
		Star:          star,
		Fragmentation: "time::month, product::group",
		Seed:          42,
	}, mdhf.WithOnDisk(""), mdhf.WithWorkers(0))
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	spec := w.Fragmentation()
	fmt.Printf("warehouse: %d rows in %d fragments, %d surviving bitmaps\n",
		star.N(), spec.NumFragments(), spec.SurvivingBitmaps(w.Indexes()))

	// Dimension tables with B+-tree indices resolve names to members.
	fmt.Printf("dimension tables: %.2f MB (the paper: \"only occupy 1 MB\")\n", float64(w.Catalog().Bytes())/(1<<20))
	fmt.Printf("executing with %d fragment workers\n\n", w.Workers())

	// The in-memory oracle for verification.
	table, err := w.Table(ctx)
	if err != nil {
		log.Fatal(err)
	}

	for _, text := range []string{
		"time.month = 'MONTH-0003', product.group = 'GROUP-0012'",
		"product.code = 'CODE-0077', time.quarter = 'QUARTER-0002'",
		"customer.store = 'STORE-0007'",
	} {
		q, err := w.QueryText(text)
		if err != nil {
			log.Fatal(err)
		}
		agg, st, err := q.Execute(ctx)
		if err != nil {
			log.Fatal(err)
		}
		want := mdhf.ScanAggregate(table, q.Query())
		status := "OK"
		if agg.Count != want.Count || agg.DollarSales != want.DollarSales {
			status = "MISMATCH"
		}
		fmt.Printf("%s\n", text)
		fmt.Printf("  class %-11s %6d hits  sum(DollarSales)=%-12d [verify: %s]\n",
			q.Class(), agg.Count, agg.DollarSales, status)
		fmt.Printf("  physical I/O on the %s backend: %d fact pages in %d ops, %d bitmap pages in %d ops\n\n",
			st.Backend, st.IO.FactPages, st.IO.FactIOs, st.IO.BitmapPages, st.IO.BitmapIOs)
	}
}
