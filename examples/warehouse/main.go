// Warehouse: a full on-disk round trip — generate fact data, write the
// MDHF-fragmented fact file and bitmap files to disk, reopen them, resolve
// name-level queries through the B+-tree-indexed dimension tables, and
// execute with real page I/O, reporting the physical I/O counts that the
// paper's Table 3 models analytically.
package main

import (
	"fmt"
	"log"
	"os"

	mdhf "repro"
)

func main() {
	star := mdhf.APB1Scaled(60)
	spec, err := mdhf.ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		log.Fatal(err)
	}
	icfg := mdhf.APB1Indexes(star)

	dir, err := os.MkdirTemp("", "mdhf-warehouse")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build the on-disk warehouse.
	table, err := mdhf.GenerateData(star, 42)
	if err != nil {
		log.Fatal(err)
	}
	store, err := mdhf.BuildStore(dir, table, spec)
	if err != nil {
		log.Fatal(err)
	}
	bitmaps, err := mdhf.BuildBitmapFile(dir, store, icfg)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	defer bitmaps.Close()
	fmt.Printf("warehouse in %s: %d rows in %d fragments, %d surviving bitmaps per fragment\n",
		dir, table.N(), store.NumFragments(), bitmaps.NumBitmaps())

	// Dimension tables with B+-tree indices resolve names to members.
	catalog := mdhf.BuildDimCatalog(star)
	fmt.Printf("dimension tables: %.2f MB (the paper: \"only occupy 1 MB\")\n\n", float64(catalog.Bytes())/(1<<20))

	// The executor fans each query's relevant fragments out over the
	// shared worker pool; 0 means one worker per CPU, and results are
	// identical at any worker count.
	exec := mdhf.NewParallelStorageExecutor(store, bitmaps, 0)
	fmt.Printf("executing with %d fragment workers\n\n", mdhf.Workers(exec.Workers))
	for _, text := range []string{
		"time.month = 'MONTH-0003', product.group = 'GROUP-0012'",
		"product.code = 'CODE-0077', time.quarter = 'QUARTER-0002'",
		"customer.store = 'STORE-0007'",
	} {
		q, err := catalog.ParseQuery(text)
		if err != nil {
			log.Fatal(err)
		}
		agg, io, err := exec.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		// Verify against the in-memory oracle.
		want := mdhf.ScanAggregate(table, q)
		status := "OK"
		if agg.Count != want.Count || agg.DollarSales != want.DollarSales {
			status = "MISMATCH"
		}
		fmt.Printf("%s\n", text)
		fmt.Printf("  class %-11s %6d hits  sum(DollarSales)=%-12d [verify: %s]\n",
			spec.Classify(q), agg.Count, agg.DollarSales, status)
		fmt.Printf("  physical I/O: %d fact pages in %d ops, %d bitmap pages in %d ops\n\n",
			io.FactPages, io.FactIOs, io.BitmapPages, io.BitmapIOs)
	}
}
