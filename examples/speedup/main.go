// Speedup: a compact version of the paper's Section 6.1 scalability study,
// run on the SIMPAD simulator at full APB-1 scale — the disk-bound 1STORE
// query scaling with disks and the CPU-bound 1MONTH query scaling with
// processors.
package main

import (
	"fmt"
	"log"

	mdhf "repro"
)

func run(star *mdhf.Star, spec *mdhf.Fragmentation, icfg mdhf.IndexConfig,
	qt mdhf.QueryType, d, p, t int) float64 {
	cfg := mdhf.DefaultSimConfig()
	cfg.Disks, cfg.Nodes, cfg.TasksPerNode = d, p, t
	placement := mdhf.Placement{Disks: d, Scheme: mdhf.RoundRobin, Staggered: true}
	sys, err := mdhf.NewSimSystem(cfg, icfg, placement, 1)
	if err != nil {
		log.Fatal(err)
	}
	q, err := mdhf.NewQueryGenerator(star, 1).Next(qt)
	if err != nil {
		log.Fatal(err)
	}
	rs := sys.Run([]*mdhf.SimPlan{mdhf.NewSimPlan(spec, icfg, q, cfg)})
	return rs[0].ResponseTime
}

func main() {
	star := mdhf.APB1()
	icfg := mdhf.APB1Indexes(star)
	spec, err := mdhf.ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1STORE (disk-bound, unsupported by the fragmentation): scales with disks")
	fmt.Printf("%8s %8s %8s %14s %10s\n", "disks", "nodes", "t", "response [s]", "speed-up")
	var base float64
	for _, d := range []int{20, 60, 100} {
		p := d / 5
		rt := run(star, spec, icfg, mdhf.OneStore, d, p, d/p)
		if base == 0 {
			base = rt
		}
		fmt.Printf("%8d %8d %8d %14.1f %10.2f\n", d, p, d/p, rt, base/rt)
	}

	fmt.Println("\n1MONTH (CPU-bound, optimally supported): scales with processors")
	fmt.Printf("%8s %8s %8s %14s %10s\n", "disks", "nodes", "t", "response [s]", "speed-up")
	base = 0
	for _, p := range []int{1, 5, 10, 25, 50} {
		rt := run(star, spec, icfg, mdhf.OneMonth, 100, p, 4)
		if base == 0 {
			base = rt
		}
		fmt.Printf("%8d %8d %8d %14.1f %10.2f\n", 100, p, 4, rt, base/rt)
	}
	fmt.Println("\n(compare Figures 3 and 4 of the paper: near-linear in d and p respectively)")
}
