// Speedup: a compact version of the paper's Section 6.1 scalability study,
// run on the SIMPAD simulator at full APB-1 scale through the Warehouse's
// simulation backend — the disk-bound 1STORE query scaling with disks and
// the CPU-bound 1MONTH query scaling with processors. Opening a Warehouse
// per configuration is cheap: the simulator models the physical design,
// so no fact data is ever generated.
package main

import (
	"context"
	"fmt"
	"log"

	mdhf "repro"
)

const frag = "time::month, product::group"

func run(ctx context.Context, star *mdhf.Star, qt mdhf.QueryType, d, p, t int) float64 {
	cfg := mdhf.DefaultSimConfig()
	cfg.Disks, cfg.Nodes, cfg.TasksPerNode = d, p, t
	w, err := mdhf.Open(ctx, mdhf.Config{Star: star, Fragmentation: frag},
		mdhf.WithSimConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	q, err := mdhf.NewQueryGenerator(star, 1).Next(qt)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := w.Simulate(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	return rs[0].ResponseTime
}

func main() {
	ctx := context.Background()
	star := mdhf.APB1()

	fmt.Println("1STORE (disk-bound, unsupported by the fragmentation): scales with disks")
	fmt.Printf("%8s %8s %8s %14s %10s\n", "disks", "nodes", "t", "response [s]", "speed-up")
	var base float64
	for _, d := range []int{20, 60, 100} {
		p := d / 5
		rt := run(ctx, star, mdhf.OneStore, d, p, d/p)
		if base == 0 {
			base = rt
		}
		fmt.Printf("%8d %8d %8d %14.1f %10.2f\n", d, p, d/p, rt, base/rt)
	}

	fmt.Println("\n1MONTH (CPU-bound, optimally supported): scales with processors")
	fmt.Printf("%8s %8s %8s %14s %10s\n", "disks", "nodes", "t", "response [s]", "speed-up")
	base = 0
	for _, p := range []int{1, 5, 10, 25, 50} {
		rt := run(ctx, star, mdhf.OneMonth, 100, p, 4)
		if base == 0 {
			base = rt
		}
		fmt.Printf("%8d %8d %8d %14.1f %10.2f\n", 100, p, 4, rt, base/rt)
	}
	fmt.Println("\n(compare Figures 3 and 4 of the paper: near-linear in d and p respectively)")
}
