// Bitmaps: demonstrate the encoded bitmap join index of Section 3.2 /
// Table 1 — hierarchical encoding, prefix selections, and the bitmap
// elimination MDHF enables.
package main

import (
	"fmt"

	mdhf "repro"
)

func main() {
	star := mdhf.APB1()
	product := star.Dim(mdhf.DimProduct)

	// Table 1: the hierarchical encoding of the PRODUCT dimension.
	layout := mdhf.NewBitmapLayout(product, nil)
	fmt.Printf("PRODUCT encoding: %d bitmaps, pattern %s\n", layout.TotalBits(), layout)
	for i, l := range product.Levels {
		fmt.Printf("  %-10s %5d members, %d bits, selection reads %2d of %d bitmaps\n",
			l.Name, l.Card, layout.FieldBits(i), layout.PrefixBits(i), layout.TotalBits())
	}

	// Build a real index over generated rows (reduced scale) and run the
	// 1MONTH1GROUP star join of Section 3.1 via bitmap intersection.
	small := mdhf.APB1Scaled(60)
	table := mdhf.MustGenerateData(small, 1)
	pd := small.DimIndex(mdhf.DimProduct)
	td := small.DimIndex(mdhf.DimTime)
	prodIdx := mdhf.NewEncodedBitmapIndex(mdhf.NewBitmapLayout(small.Dim(mdhf.DimProduct), nil), table.Dims[pd])
	monthIdx := mdhf.NewSimpleBitmapIndex(small.Dim(mdhf.DimTime).LeafCard(), table.Dims[td])

	group := small.Dim(mdhf.DimProduct).LevelIndex(mdhf.LvlGroup)
	g, month := 3, 5
	sel, bitmapsRead := prodIdx.Select(group, g)
	sel.And(monthIdx.Bitmap(month))

	var dollars int64
	sel.ForEach(func(i int) { dollars += table.DollarSales[i] })
	fmt.Printf("\n1MONTH1GROUP (group=%d, month=%d) over %d rows:\n", g, month, table.N())
	fmt.Printf("  read %d product bitmaps + 1 month bitmap, %d hits, sum(DollarSales)=%d\n",
		bitmapsRead, sel.OnesCount(), dollars)

	// MDHF's bitmap elimination: fragmenting on product::group makes the
	// 10-bit group prefix constant per fragment.
	fmt.Printf("\nunder FMonthGroup a code lookup inside a fragment reads only %d suffix bitmaps\n",
		layout.SuffixBits(product.LevelIndex(mdhf.LvlGroup)))
	fmt.Printf("and all %d TIME bitmaps disappear: 76 -> 32 bitmaps total (Section 4.2)\n", 34)
}
