// Advisor: apply the Section 4.7 data allocation guidelines to a workload —
// an advisory-only Warehouse (no fragmentation, no fact data) enumerates
// all fragmentation options of the full APB-1 schema, filters by the
// three thresholds, and ranks the survivors by analytical I/O work.
package main

import (
	"context"
	"fmt"
	"log"

	mdhf "repro"
)

func main() {
	ctx := context.Background()

	// No Fragmentation in the Config: this warehouse exists to choose one.
	// WithWorkers(0) analyses candidates on one worker per CPU.
	w, err := mdhf.Open(ctx, mdhf.Config{Star: mdhf.APB1()}, mdhf.WithWorkers(0))
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	star := w.Star()
	gen := mdhf.NewQueryGenerator(star, 1)

	// A marketing-analysis mix: mostly month/group roll-ups, some store
	// drill-downs and code/quarter lookups.
	var mix []mdhf.WeightedQuery
	for _, e := range []struct {
		qt mdhf.QueryType
		w  float64
	}{
		{mdhf.OneMonthOneGroup, 0.4},
		{mdhf.OneGroupOneQuarter, 0.2},
		{mdhf.OneCodeOneQuarter, 0.2},
		{mdhf.OneStore, 0.2},
	} {
		q, err := gen.Next(e.qt)
		if err != nil {
			log.Fatal(err)
		}
		mix = append(mix, mdhf.WeightedQuery{Name: e.qt.Name, Query: q, Weight: e.w})
	}

	// Guideline 1: thresholds. (i) bitmap fragments of at least one page,
	// (ii) at most nmax fragments, plus at least one fragment per disk.
	th := mdhf.Thresholds{
		MinBitmapFragPages: 1,
		MaxFragments:       mdhf.MaxFragments(star, 1),
		MinFragments:       100, // 100 disks
	}
	fmt.Printf("thresholds: bitmap fragment >= 1 page, fragments in [100, %d]\n\n", th.MaxFragments)

	// Guidelines 2+3: analyze the I/O load of the remaining candidates on
	// the warehouse's worker pool and pick the minimum total work.
	ranked := w.Advise(mix, th)
	fmt.Printf("%d admissible fragmentations (of %d options); top 5 by weighted I/O work:\n\n",
		len(ranked), len(mdhf.EnumerateFragmentations(star)))
	for i, r := range ranked {
		if i == 5 {
			break
		}
		fmt.Printf("%d. %-58s %9d fragments, %2d bitmaps, %8.0f MB\n",
			i+1, r.Spec.String(), r.Fragments, r.Bitmaps, r.Work/(1<<20))
	}

	best := ranked[0]
	fmt.Printf("\nper-query breakdown of the winner %s:\n", best.Spec)
	for i, wq := range mix {
		c := best.PerQuery[i]
		fmt.Printf("  %-16s weight %.1f: %-11s %7d fragments %10.1f MB I/O\n",
			wq.Name, wq.Weight, c.Class, c.Fragments, c.TotalMB())
	}
}
