package mdhf

// BenchmarkGroupedRollup measures what grouped roll-ups cost on top of
// the ungrouped aggregate, on the in-memory engine and the on-disk
// executor over the reduced-scale APB-1 warehouse: "ungrouped" is the
// baseline full roll-up, "aligned" groups by the fragmentation attribute
// time::month (the MDHF fast path: one constant group key per fragment,
// zero per-row work — the acceptance bar is ≤ ~5% over the baseline),
// and "perrow" groups by the non-fragmentation customer::store (the
// documented fallback: per-row key arithmetic plus map updates). Results
// are asserted against the scan oracle before timing.

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

func BenchmarkGroupedRollup(b *testing.B) {
	ctx := context.Background()
	star := APB1Scaled(60)
	tab := MustGenerateData(star, 3)
	queries := map[string]string{
		"ungrouped": "time::quarter=1",
		"aligned":   "time::quarter=1 group by time::month",
		"perrow":    "time::quarter=1 group by customer::store",
	}
	for _, backend := range []struct {
		name string
		opts []Option
	}{
		{"engine", nil},
		{"storage", []Option{WithOnDisk("")}},
	} {
		w, err := Open(ctx, Config{
			Star:          star,
			Fragmentation: "time::month, product::group",
			Table:         tab,
		}, backend.opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		for _, variant := range []string{"ungrouped", "aligned", "perrow"} {
			pq, err := w.QueryText(queries[variant])
			if err != nil {
				b.Fatal(err)
			}
			// Correctness gate before timing: byte-identical to the oracle.
			res, _, err := pq.Execute(ctx)
			if err != nil {
				b.Fatal(err)
			}
			want, err := ScanGroupedAggregate(tab, pq.Query())
			if err != nil {
				b.Fatal(err)
			}
			if res.Aggregate != want.Aggregate || !reflect.DeepEqual(res.Groups, want.Groups) {
				b.Fatalf("%s/%s diverges from scan oracle", backend.name, variant)
			}
			b.Run(fmt.Sprintf("%s/%s", backend.name, variant), func(b *testing.B) {
				groups := 0
				for i := 0; i < b.N; i++ {
					r, _, err := pq.Execute(ctx)
					if err != nil {
						b.Fatal(err)
					}
					groups = len(r.Groups)
				}
				b.ReportMetric(float64(groups), "groups")
			})
		}
	}
}
