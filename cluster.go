package mdhf

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dimtable"
	"repro/internal/frag"
	"repro/internal/schema"
	"repro/internal/simpad"
)

// Multi-node serving types (see OpenCluster).
type (
	// ClusterNode is one serving node: the fragments the cluster
	// placement assigns to its index, behind the node's own scheduler,
	// snapshot pinning and delta ingestion. Build one per shard with
	// NewClusterNode, serve it with NewNodeHandler (or cmd/mdhfnode).
	ClusterNode = cluster.Node
	// ClusterNodeConfig configures one ClusterNode.
	ClusterNodeConfig = cluster.NodeConfig
	// ClusterNodeStats is one node's server-side serving snapshot.
	ClusterNodeStats = cluster.NodeStats
	// ClusterClientStats is the coordinator's client-side accounting for
	// one node (retries, hedges, breaker trips, fast-fails).
	ClusterClientStats = cluster.ClientStats
	// ClusterExecStats describes one scattered execution's fan-out.
	ClusterExecStats = cluster.ExecStats
	// NodeError wraps any failure of one node's sub-request with the
	// node index; unwrap with errors.As.
	NodeError = cluster.NodeError
)

// Typed cluster errors.
var (
	// ErrNodeFailed marks requests rejected by a killed node.
	ErrNodeFailed = cluster.ErrNodeFailed
	// ErrNodeUnavailable marks transport-level failures (the only kind
	// the coordinator retries).
	ErrNodeUnavailable = cluster.ErrUnavailable
	// ErrBreakerOpen marks sub-requests failed fast by a node's open
	// circuit breaker.
	ErrBreakerOpen = cluster.ErrBreakerOpen
)

// NewClusterNode builds one serving node over its shard of the fact
// rows (PartitionFactTable produces the shards). The fragmentation,
// index configuration and cluster placement must be identical across
// the cluster.
func NewClusterNode(cfg ClusterNodeConfig, rows *FactTable) (*ClusterNode, error) {
	return cluster.NewNode(cfg, rows)
}

// NewNodeHandler serves one node over HTTP (gob bodies; POST /exec,
// /append, /compact, GET /stats) — the server side of WithNodeAddrs.
func NewNodeHandler(n *ClusterNode) http.Handler {
	return cluster.NewNodeHandler(n)
}

// PartitionFactTable splits a fact table into one shard per node of the
// cluster placement, routing every row to the node owning its fragment.
func PartitionFactTable(spec *Fragmentation, cl Placement, t *FactTable) []*FactTable {
	return cluster.PartitionTable(spec, cl, t)
}

// Cluster is the multi-node serving façade: the Warehouse surface —
// Query/QueryText, Explain, Execute, Append, Compact, ServingStats —
// over N declustered node shards. OpenCluster assembles it; every
// fragment is owned by exactly one node (the disk-placement math one
// level up), queries scatter to the owning nodes and gather partials,
// and results are byte-identical to a single-node Warehouse over the
// same rows at any node count, either scheme, and on either transport.
//
// Consistency: each node is individually epoch-versioned with snapshot
// pinning, and the single-writer-per-fragment invariant keeps every
// fragment's delta chain in deterministic arrival order; there is no
// cross-node snapshot isolation — a query racing an Append may see the
// new rows on one node before another, exactly as two independent
// warehouses would. Await Append before querying when byte-stable
// results matter.
type Cluster struct {
	star *schema.Star
	spec *frag.Spec
	icfg frag.IndexConfig
	seed int64
	opt  options
	cl   alloc.Placement

	mu     sync.Mutex
	closed bool

	table    *data.Table
	dataOnce sync.Once
	dataErr  error

	buildOnce sync.Once
	buildErr  error
	nodes     []*cluster.Node // nil over an HTTP transport
	coord     *cluster.Coordinator

	catOnce sync.Once
	catalog *dimtable.Catalog
}

// OpenCluster assembles a Cluster from the same Config a Warehouse
// takes plus WithNodes (node count and ownership scheme). By default
// the nodes are built in-process on first Execute — each its own
// backend per the usual options (WithOnDisk, WithDisks, WithIODelay,
// WithAdmissionLimit, ...) over its shard of the fact data; with
// WithNodeAddrs the nodes are remote NewNodeHandler servers and nothing
// is built locally. The caller must Close the returned handle.
func OpenCluster(ctx context.Context, cfg Config, opts ...Option) (*Cluster, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt := defaultOptions()
	for _, o := range opts {
		o(&opt)
	}
	star := cfg.Star
	if star == nil && cfg.Table != nil {
		star = cfg.Table.Star
	}
	if star == nil {
		return nil, fmt.Errorf("mdhf: Config.Star is required")
	}
	if cfg.Table != nil && cfg.Table.Star != star {
		return nil, fmt.Errorf("mdhf: Config.Table was generated for a different schema")
	}
	if cfg.Fragmentation == "" {
		return nil, fmt.Errorf("mdhf: OpenCluster requires a fragmentation (it is the sharding function)")
	}
	spec, err := frag.Parse(star, cfg.Fragmentation)
	if err != nil {
		return nil, err
	}
	icfg := cfg.Indexes
	if icfg == nil {
		icfg = frag.APB1Indexes(star)
	}
	if len(icfg) != len(star.Dims) {
		return nil, fmt.Errorf("mdhf: index config has %d entries for %d dimensions", len(icfg), len(star.Dims))
	}
	n := opt.nodes
	if len(opt.nodeAddrs) > 0 {
		if n != 0 && n != len(opt.nodeAddrs) {
			return nil, fmt.Errorf("mdhf: WithNodes(%d) disagrees with %d node addresses", n, len(opt.nodeAddrs))
		}
		n = len(opt.nodeAddrs)
	}
	if n < 1 {
		return nil, fmt.Errorf("mdhf: OpenCluster requires WithNodes or WithNodeAddrs")
	}
	cl := alloc.Placement{Disks: n, Scheme: opt.nodeScheme}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Cluster{
		star:  star,
		spec:  spec,
		icfg:  icfg,
		seed:  seed,
		opt:   opt,
		cl:    cl,
		table: cfg.Table,
	}
	if len(opt.nodeAddrs) > 0 {
		tr, err := cluster.NewHTTPTransport(opt.nodeAddrs, nil)
		if err != nil {
			return nil, err
		}
		coord, err := c.newCoordinator(tr)
		if err != nil {
			return nil, err
		}
		c.coord = coord
		c.buildOnce.Do(func() {}) // remote nodes: nothing to build
	}
	return c, nil
}

func (c *Cluster) newCoordinator(tr cluster.Transport) (*cluster.Coordinator, error) {
	ccfg := cluster.CoordinatorConfig{Spec: c.spec, Cluster: c.cl, Hedge: c.opt.hedge}
	if c.opt.retry != nil {
		ccfg.Retry = *c.opt.retry
	}
	return cluster.NewCoordinator(ccfg, tr)
}

// Star returns the schema the cluster serves.
func (c *Cluster) Star() *Star { return c.star }

// Fragmentation returns the MDHF fragmentation — also the cluster's
// sharding function.
func (c *Cluster) Fragmentation() *Fragmentation { return c.spec }

// Nodes returns the cluster's node count.
func (c *Cluster) Nodes() int { return c.cl.Disks }

// Placement returns the cluster-level placement (Disks = node count).
func (c *Cluster) Placement() Placement { return c.cl }

// ensureData generates the fact table once (unless Config.Table
// supplied it). Only the in-process transport materialises data.
func (c *Cluster) ensureData() error {
	c.dataOnce.Do(func() {
		if c.table != nil {
			return
		}
		c.table, c.dataErr = data.Generate(c.star, c.seed)
	})
	return c.dataErr
}

// ensure lazily builds the in-process nodes and the coordinator on
// first use (a no-op over WithNodeAddrs).
func (c *Cluster) ensure(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	c.buildOnce.Do(func() { c.buildErr = c.build() })
	return c.buildErr
}

// build materialises the shards and brings up one in-process node per
// placement slot, then the Local transport and the coordinator.
func (c *Cluster) build() error {
	if err := c.ensureData(); err != nil {
		return err
	}
	parts := cluster.PartitionTable(c.spec, c.cl, c.table)
	nodes := make([]*cluster.Node, len(parts))
	for k := range parts {
		n, err := cluster.NewNode(c.nodeConfig(k), parts[k])
		if err != nil {
			for _, built := range nodes[:k] {
				built.Close()
			}
			return err
		}
		nodes[k] = n
	}
	coord, err := c.newCoordinator(cluster.NewLocal(nodes))
	if err != nil {
		for _, n := range nodes {
			n.Close()
		}
		return err
	}
	c.mu.Lock()
	c.nodes, c.coord = nodes, coord
	c.mu.Unlock()
	return nil
}

// nodeConfig maps the cluster's options onto one node's configuration:
// every per-warehouse knob becomes per-node (its own workers, admission
// limit, disks, fault plan).
func (c *Cluster) nodeConfig(k int) cluster.NodeConfig {
	ncfg := cluster.NodeConfig{
		Spec:         c.spec,
		Indexes:      c.icfg,
		Index:        k,
		Cluster:      c.cl,
		OnDisk:       c.opt.onDisk,
		Compress:     c.opt.compress,
		Disks:        c.opt.disks,
		DiskScheme:   c.opt.scheme,
		Staggered:    c.opt.staggered,
		PrefetchFact: c.opt.params.FactPrefetch,
		IODelay:      c.opt.ioDelay,
		IODelaySet:   c.opt.ioDelaySet,
		Workers:      c.opt.workers,
		AdmitLimit:   c.opt.admitLimit,
		FaultPlan:    c.opt.faultPlan,
		Retry:        c.opt.retry,
		SharedWindow: c.opt.sharedWindow,
	}
	if c.opt.dir != "" {
		ncfg.Dir = fmt.Sprintf("%s/node-%02d", c.opt.dir, k)
	}
	return ncfg
}

// Catalog returns the dimension-table catalog (built on first use).
func (c *Cluster) Catalog() *DimCatalog {
	c.catOnce.Do(func() { c.catalog = dimtable.BuildCatalog(c.star) })
	return c.catalog
}

// Query prepares a star query against the cluster.
func (c *Cluster) Query(q Query) *ClusterQuery {
	return &ClusterQuery{c: c, q: q}
}

// QueryText parses and prepares a query in either notation (see
// Warehouse.QueryText).
func (c *Cluster) QueryText(text string) (*ClusterQuery, error) {
	var q frag.Query
	var err error
	if strings.Contains(text, "'") || (!strings.Contains(text, "::") && strings.Contains(text, ".")) {
		q, err = c.Catalog().ParseQuery(text)
	} else {
		q, err = frag.ParseQuery(c.star, text)
	}
	if err != nil {
		return nil, err
	}
	return c.Query(q), nil
}

// Append routes each row to the node owning its fragment and fans the
// per-node batches out in parallel — the single-writer-per-fragment
// invariant. A failed node's batch fails the call with a NodeError
// naming it while other nodes' batches still land; appended rows are
// visible to queries admitted after Append returns on every node that
// acknowledged.
func (c *Cluster) Append(ctx context.Context, rows []FactRow) error {
	if err := c.ensure(ctx); err != nil {
		return err
	}
	crows := make([]cluster.Row, len(rows))
	for i, r := range rows {
		crows[i] = cluster.Row{Leaves: r.Leaves, UnitsSold: r.UnitsSold, DollarSales: r.DollarSales, Cost: r.Cost}
	}
	return c.coord.Append(ctx, crows)
}

// Compact folds every node's sealed deltas into its next epoch, fanning
// the compactions out in parallel.
func (c *Cluster) Compact(ctx context.Context) error {
	if err := c.ensure(ctx); err != nil {
		return err
	}
	return c.coord.Compact(ctx)
}

// FailNode kills an in-process node for fault testing: its sub-requests
// fail fast with ErrNodeFailed (and, after enough strikes, the
// coordinator's breaker fails them faster still) until ReviveNode.
// Queries confined to other nodes' fragments are unaffected. It errors
// on a cluster over WithNodeAddrs — kill the remote process instead.
func (c *Cluster) FailNode(k int) error {
	n, err := c.localNode(k)
	if err != nil {
		return err
	}
	n.Fail()
	return nil
}

// ReviveNode brings a killed in-process node back.
func (c *Cluster) ReviveNode(k int) error {
	n, err := c.localNode(k)
	if err != nil {
		return err
	}
	n.Revive()
	return nil
}

func (c *Cluster) localNode(k int) (*cluster.Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nodes == nil {
		return nil, fmt.Errorf("mdhf: no in-process nodes (not built yet, or serving over WithNodeAddrs)")
	}
	if k < 0 || k >= len(c.nodes) {
		return nil, fmt.Errorf("mdhf: node %d out of range [0,%d)", k, len(c.nodes))
	}
	return c.nodes[k], nil
}

// ClusterServingStats is the cluster-wide serving snapshot: every
// node's server-side counters plus the coordinator's client-side
// per-node accounting.
type ClusterServingStats struct {
	// Nodes holds each node's serving snapshot (epoch, delta set,
	// ingestion counters, scheduler accounting, failure flag), fetched
	// over the transport; a node that cannot answer contributes a zero
	// snapshot with only Index set.
	Nodes []ClusterNodeStats
	// Client holds the coordinator's per-node counters: sub-queries
	// planned, errors, transport retries, hedges and hedge wins, breaker
	// trips and fast-fails.
	Client []ClusterClientStats
}

// ServingStats snapshots the cluster's serving counters. The error (a
// NodeError join) reports nodes whose server-side snapshot could not be
// fetched; the returned struct is complete for all others.
func (c *Cluster) ServingStats(ctx context.Context) (ClusterServingStats, error) {
	if err := c.ensure(ctx); err != nil {
		return ClusterServingStats{}, err
	}
	nodes, err := c.coord.NodeStats(ctx)
	return ClusterServingStats{Nodes: nodes, Client: c.coord.ClientStats()}, err
}

// Close drains and closes the in-process nodes (remote nodes are left
// running) and releases the transport.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nodes, coord := c.nodes, c.coord
	c.nodes, c.coord = nil, nil
	c.mu.Unlock()
	var err error
	if coord != nil {
		err = errors.Join(err, coord.Close())
	}
	for _, n := range nodes {
		err = errors.Join(err, n.Close())
	}
	return err
}

// ClusterQuery is a star query bound to a Cluster: Explain runs the
// analytical models under the two-tier node×disk response model, and
// Execute scatters the query to the owning nodes.
type ClusterQuery struct {
	c *Cluster
	q Query
}

// Query returns the underlying star query.
func (p *ClusterQuery) Query() Query { return p.q }

// Class returns the paper's Q1-Q4 confinement classification.
func (p *ClusterQuery) Class() QueryClass { return p.c.spec.Classify(p.q) }

// Explain estimates the query without executing it, like
// Warehouse.Explain but under the cluster's two-tier queue model: I/Os
// route to (node, disk-within-node) queues and the modelled bottleneck
// is the slowest node's own bottleneck disk — never a global pool that
// disks of different nodes could share. It needs no fact data and no
// node round trips.
func (p *ClusterQuery) Explain(ctx context.Context) (Explain, error) {
	c := p.c
	if err := ctx.Err(); err != nil {
		return Explain{}, err
	}
	if err := p.q.Validate(c.star); err != nil {
		return Explain{}, err
	}
	ex := Explain{Class: c.spec.Classify(p.q)}
	ex.Cost = cost.Estimate(c.spec, c.icfg, p.q, c.opt.params)
	dp := cost.DiskParams{
		Placement:     c.modelPlacement(),
		NodePlacement: c.cl,
		AccessTime:    c.modelAccessTime(),
	}
	if plan := c.opt.faultPlan; plan != nil {
		// Every node runs the same fault plan on its own disk set, so all
		// node×disk queues deepen by the same expected-attempts factor.
		f := cost.RetryFactor(plan.ReadErrorRate + plan.CorruptRate)
		if f > 1 {
			nodes := dp.NodePlacement.Disks
			if nodes < 1 {
				nodes = 1
			}
			dp.Degraded = make(map[int]float64, nodes*dp.Placement.Disks)
			for k := 0; k < nodes*dp.Placement.Disks; k++ {
				dp.Degraded[k] = f
			}
		}
	}
	ex.Response = cost.EstimateResponse(c.spec, c.icfg, p.q, c.opt.params, dp)
	plan := simpad.NewPlan(c.spec, c.icfg, p.q, c.opt.simCfg)
	if c.opt.cluster > 1 {
		plan = plan.Clustered(c.opt.cluster)
	}
	ex.Plan = plan
	return ex, nil
}

// modelPlacement is the per-node disk placement assumed by Explain's
// response model: each node's own declustering, or one disk per node.
func (c *Cluster) modelPlacement() alloc.Placement {
	if c.opt.disks > 0 {
		return alloc.Placement{Disks: c.opt.disks, Scheme: c.opt.scheme, Staggered: c.opt.staggered, Cluster: c.opt.cluster}
	}
	return alloc.Placement{Disks: 1, Scheme: c.opt.scheme, Staggered: c.opt.staggered, Cluster: c.opt.cluster}
}

func (c *Cluster) modelAccessTime() time.Duration {
	if c.opt.ioDelaySet {
		return c.opt.ioDelay
	}
	return 12 * time.Millisecond
}

// Execute scatters the query to the nodes owning its relevant
// fragments, gathers and merges their partials, and returns the result
// — byte-identical to a single-node Warehouse over the same rows —
// with unified statistics (Stats.Cluster carries the fan-out). Any
// node failing its sub-request (after transport retries, or fast via
// its breaker) fails the query with a NodeError naming it; no partial
// results are ever returned.
func (p *ClusterQuery) Execute(ctx context.Context) (Result, Stats, error) {
	c := p.c
	if err := c.ensure(ctx); err != nil {
		return Result{}, Stats{}, err
	}
	if d := c.opt.deadline; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	res, est, err := c.coord.Execute(ctx, p.q)
	if err != nil {
		return Result{}, Stats{}, err
	}
	st := Stats{
		Backend:    ClusterBackend,
		Compressed: c.opt.compress,
		Workers:    c.cl.Disks,
		Wall:       time.Since(start),
		DeltaRows:  est.DeltaRows,
		Engine:     est.Engine,
		IO:         est.IO,
		SharedScan: est.Shared,
		Cluster:    &est,
	}
	return res, st, nil
}
