// Command mdhfadvisor implements the data allocation guidelines of
// Section 4.7 as a tool: it prints Table 2 (fragmentation options under
// size constraints) and ranks admissible fragmentations for a query mix by
// total analytical I/O work.
//
// Usage:
//
//	mdhfadvisor -table2
//	mdhfadvisor -mix "1MONTH1GROUP:0.5,1STORE:0.3,1CODE1QUARTER:0.2" -top 10
//	mdhfadvisor -diskadvise -maxdisks 16   # also recommend disk count and
//	                                       # placement scheme (queue model)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	mdhf "repro"
)

func main() {
	table2 := flag.Bool("table2", false, "print Table 2 (fragmentation options under size constraints)")
	mix := flag.String("mix", "", "query mix as NAME:WEIGHT,... (e.g. 1STORE:0.5,1MONTH:0.5)")
	top := flag.Int("top", 10, "number of candidates to print")
	minPages := flag.Float64("minpages", 1, "threshold (i): minimal bitmap fragment size in pages")
	maxFrags := flag.Int64("maxfrags", 0, "threshold (ii): maximal number of fragments (0 = nmax for prefetch 1)")
	maxBitmaps := flag.Int("maxbitmaps", 0, "threshold (iii): maximal number of bitmaps (0 = off)")
	disks := flag.Int64("disks", 100, "minimal fragments = number of disks")
	seed := flag.Int64("seed", 1, "query parameter seed")
	workers := flag.Int("workers", 0, "parallel candidate-analysis workers (<1 = one per CPU)")
	diskAdvise := flag.Bool("diskadvise", false, "also recommend a disk count and placement scheme for the best fragmentation (per-disk queue model)")
	maxDisks := flag.Int("maxdisks", 16, "diskadvise: largest power-of-two disk count considered (primes next to each candidate are included)")
	access := flag.Duration("access", 12*time.Millisecond, "diskadvise: per-disk access time (Table 4: seek + settle)")
	flag.Parse()

	if *table2 {
		printTable2()
		if *mix == "" {
			return
		}
		fmt.Println()
	}
	if *mix == "" {
		*mix = "1MONTH1GROUP:0.4,1STORE:0.3,1CODE1QUARTER:0.3"
		fmt.Printf("(no -mix given; using %s)\n\n", *mix)
	}
	if err := advise(*mix, *top, *minPages, *maxFrags, *maxBitmaps, *disks, *seed, *workers, *diskAdvise, *maxDisks, *access); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// diskCandidates returns the powers of two up to maxDisks plus the next
// prime at or above each — the paper's gcd counter-measure candidates.
// The prime companion of the largest power of two may slightly exceed
// maxDisks (e.g. 17 for 16); dropping it would exclude the prime
// counter-measure exactly where it matters most.
func diskCandidates(maxDisks int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(d int) {
		if d >= 1 && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for d := 1; d <= maxDisks; d *= 2 {
		add(d)
		add(mdhf.NextPrime(d))
	}
	return out
}

func printDiskAdvice(spec *mdhf.Fragmentation, icfg mdhf.IndexConfig, mix []mdhf.WeightedQuery, maxDisks int, access time.Duration) {
	dp := mdhf.DiskParams{
		Placement:  mdhf.Placement{Staggered: true},
		AccessTime: access,
	}
	ranked := mdhf.AdviseDisks(spec, icfg, mix, mdhf.DefaultCostParams(), dp, diskCandidates(maxDisks))
	fmt.Println("\nDisk allocation advice (per-disk queue model, staggered bitmaps):")
	fmt.Printf("%-4s %6s %-16s %14s %9s %10s\n", "rank", "disks", "scheme", "response [s]", "speed-up", "imbalance")
	for i, r := range ranked {
		fmt.Printf("%-4d %6d %-16s %14.1f %9.2f %10.2f\n",
			i+1, r.Placement.Disks, r.Placement.Scheme, r.Response.Seconds(), r.Speedup, r.Imbalance)
	}
}

func printTable2() {
	fmt.Println("Table 2: Number of fragmentation options under size constraints")
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "#dims", "any", ">=1 page", ">=4 pages", ">=8 pages")
	cells := mdhf.Table2()
	byDims := map[int][]mdhf.Table2Cell{}
	for _, c := range cells {
		byDims[c.Dims] = append(byDims[c.Dims], c)
	}
	for dims := 1; dims <= 4; dims++ {
		row := byDims[dims]
		fmt.Printf("%-8d", dims)
		for _, c := range row {
			fmt.Printf(" %5d (%3d)", c.Count, c.Paper)
		}
		fmt.Println()
	}
	fmt.Println("(values in parentheses: paper's Table 2)")
}

// advise opens an advisory-only Warehouse (no fragmentation, no fact
// data) and ranks the admissible fragmentations on its worker pool.
func advise(mixText string, top int, minPages float64, maxFrags int64, maxBitmaps int, disks, seed int64, workers int, diskAdvise bool, maxDisks int, access time.Duration) error {
	ctx := context.Background()
	w, err := mdhf.Open(ctx, mdhf.Config{Star: mdhf.APB1(), Seed: seed}, mdhf.WithWorkers(workers))
	if err != nil {
		return err
	}
	defer w.Close()
	star := w.Star()
	gen := mdhf.NewQueryGenerator(star, seed)

	var mix []mdhf.WeightedQuery
	for _, part := range strings.Split(mixText, ",") {
		nw := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(nw) != 2 {
			return fmt.Errorf("malformed mix entry %q (want NAME:WEIGHT)", part)
		}
		qt, err := mdhf.QueryTypeByName(nw[0])
		if err != nil {
			return err
		}
		weight, err := strconv.ParseFloat(nw[1], 64)
		if err != nil {
			return fmt.Errorf("bad weight in %q: %v", part, err)
		}
		q, err := gen.Next(qt)
		if err != nil {
			return err
		}
		mix = append(mix, mdhf.WeightedQuery{Name: qt.Name, Query: q, Weight: weight})
	}

	if maxFrags == 0 {
		maxFrags = mdhf.MaxFragments(star, 1)
	}
	th := mdhf.Thresholds{
		MinBitmapFragPages: minPages,
		MaxFragments:       maxFrags,
		MaxBitmaps:         maxBitmaps,
		MinFragments:       disks,
	}
	ranked := w.Advise(mix, th)
	fmt.Printf("Admissible fragmentations: %d of %d (thresholds: bitmap frag >= %.1f pages, <= %d fragments, >= %d fragments",
		len(ranked), len(mdhf.EnumerateFragmentations(star)), minPages, maxFrags, disks)
	if maxBitmaps > 0 {
		fmt.Printf(", <= %d bitmaps", maxBitmaps)
	}
	fmt.Println(")")
	fmt.Println()
	fmt.Printf("%-4s %-55s %12s %9s %12s\n", "rank", "fragmentation", "fragments", "bitmaps", "work [MB]")
	for i, r := range ranked {
		if i >= top {
			break
		}
		fmt.Printf("%-4d %-55s %12d %9d %12.0f\n",
			i+1, r.Spec.String(), r.Fragments, r.Bitmaps, r.Work/(1<<20))
	}
	if len(ranked) > 0 {
		fmt.Println("\nPer-query I/O of the best candidate:")
		best := ranked[0]
		for i, wq := range mix {
			c := best.PerQuery[i]
			fmt.Printf("  %-16s weight %.2f: %s, %d fragments, %.1f MB\n",
				wq.Name, wq.Weight, c.Class, c.Fragments, c.TotalMB())
		}
		if diskAdvise {
			printDiskAdvice(best.Spec, w.Indexes(), mix, maxDisks, access)
		}
	}
	return nil
}
