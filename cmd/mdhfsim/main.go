// Command mdhfsim runs the SIMPAD simulation experiments of the MDHF study
// and prints the series behind Figures 3-6, the Table 4 parameter settings,
// or a single custom simulation run.
//
// Usage:
//
//	mdhfsim -fig 3          # 1STORE speed-up over disks
//	mdhfsim -fig 4          # 1MONTH speed-up over processors
//	mdhfsim -fig 5          # parallel vs non-parallel bitmap I/O
//	mdhfsim -fig 6          # fragmentation comparison (both panels)
//	mdhfsim -fig 6 -workers 8  # same figure, 8 parallel simulation workers
//	mdhfsim -params         # Table 4 settings
//	mdhfsim -frag "time::month, product::group" -qt 1STORE -d 100 -p 20 -t 5
//	mdhfsim -diskcurve      # measured 1STORE speed-up over 1/2/4/8/16 real
//	                        # declustered disks (per-disk queues), vs model
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	mdhf "repro"
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce: 3, 4, 5 or 6")
	params := flag.Bool("params", false, "print the Table 4 simulation parameters")
	queries := flag.Int("queries", 1, "queries averaged per data point")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "parallel simulation workers per figure (values below 1 mean 1, i.e. sequential — full-scale simulations are memory-heavy, so unlike mdhfcost/mdhfadvisor there is no one-per-CPU default; results are identical at any count)")

	fragText := flag.String("frag", "", "custom run: fragmentation")
	qtName := flag.String("qt", "1STORE", "custom run: query type")
	d := flag.Int("d", 100, "custom run: disks")
	p := flag.Int("p", 20, "custom run: processing nodes")
	t := flag.Int("t", 5, "custom run: subqueries per node")
	noParIO := flag.Bool("no-parallel-bitmap-io", false, "custom run: disable parallel bitmap I/O")
	sharedNothing := flag.Bool("shared-nothing", false, "custom run: Shared Nothing architecture (footnote 3)")
	cluster := flag.Int("cluster", 1, "custom run: fragments per clustering granule (Section 6.3)")
	groupBy := flag.String("groupby", "", "custom run: GROUP BY levels attached to every query, e.g. \"time::month\" (reported analytically; grouping adds no simulated I/O)")

	diskCurve := flag.Bool("diskcurve", false, "measure 1STORE speed-up over declustered disk counts on the real on-disk executor (vs the per-disk queue model)")
	diskDelay := flag.Duration("diskdelay", 500*time.Microsecond, "diskcurve: simulated per-disk access time")
	diskScale := flag.Int("diskscale", 60, "diskcurve: APB1Scaled reduction factor of the generated warehouse")
	diskWorkers := flag.Int("diskworkers", 16, "diskcurve: executor fragment workers")
	gap := flag.Bool("gap", false, "diskcurve: use the gap round-robin placement scheme")
	flag.Parse()

	opt := mdhf.FigureOptions{Queries: *queries, Seed: *seed, Workers: *workers}
	switch {
	case *diskCurve:
		scheme := mdhf.RoundRobin
		if *gap {
			scheme = mdhf.GapRoundRobin
		}
		fig, err := mdhf.DiskScalingCurve(mdhf.DiskCurveOptions{
			Scale:   *diskScale,
			Delay:   *diskDelay,
			Workers: *diskWorkers,
			Queries: *queries,
			Seed:    *seed,
			Scheme:  scheme,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printFigure(fig)
	case *params:
		printParams()
	case *fig == 3:
		printFigure(mdhf.Figure3(opt))
	case *fig == 4:
		printFigure(mdhf.Figure4(opt))
	case *fig == 5:
		printFigure(mdhf.Figure5(opt))
	case *fig == 6:
		printFigure(mdhf.Figure6CodeQuarter(opt))
		fmt.Println()
		printFigure(mdhf.Figure6Store(opt))
	case *fragText != "":
		if err := custom(*fragText, *qtName, *groupBy, *d, *p, *t, !*noParIO, *sharedNothing, *cluster, *queries, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printParams() {
	c := mdhf.DefaultSimConfig()
	fmt.Println("Table 4: Parameter settings used in simulations")
	fmt.Printf("disks (d):                      %d\n", c.Disks)
	fmt.Printf("processing nodes (p):           %d\n", c.Nodes)
	fmt.Printf("CPU speed:                      %.0f MIPS\n", c.MIPS)
	fmt.Printf("avg. seek time:                 %.0f ms\n", c.AvgSeekMs)
	fmt.Printf("settle + controller delay:      %.0f ms/access + %.0f ms/page\n", c.SettleMs, c.TransferMsPerPage)
	fmt.Printf("page size:                      %d B\n", c.PageSize)
	fmt.Printf("buffer fact/bitmap:             %d / %d pages\n", c.BufferFactPages, c.BufferBitmapPages)
	fmt.Printf("prefetch fact/bitmap:           %d / %d pages\n", c.PrefetchFact, c.PrefetchBitmap)
	fmt.Printf("network:                        %.0f Mbit/s, msgs %d B / %d B\n", c.NetMbps, c.SmallMsgBytes, c.LargeMsgBytes)
	fmt.Printf("instructions: init/term query   %d / %d\n", c.InstrInitQuery, c.InstrTerminateQuery)
	fmt.Printf("  init/term subquery            %d / %d\n", c.InstrInitSubquery, c.InstrTerminateSubquery)
	fmt.Printf("  read page / bitmap page       %d / %d\n", c.InstrReadPage, c.InstrProcessBitmapPage)
	fmt.Printf("  extract / aggregate row       %d / %d\n", c.InstrExtractRow, c.InstrAggregateRow)
	fmt.Printf("  message                       %d + #bytes\n", c.InstrMsgBase)
}

func printFigure(f mdhf.Figure) {
	fmt.Println(f.Name)
	for _, s := range f.Series {
		fmt.Printf("  %s:\n", s.Label)
		for _, pt := range s.Points {
			fmt.Printf("    %-22s %4.0f   response %10.1f s   speed-up %6.2f\n", f.XLabel, pt.X, pt.ResponseTime, pt.Speedup)
		}
	}
}

// custom runs one parameterised simulation through the Warehouse's
// SIMPAD backend.
func custom(fragText, qtName, groupBy string, d, p, t int, parIO, sharedNothing bool, cluster, queries int, seed int64) error {
	ctx := context.Background()
	cfg := mdhf.DefaultSimConfig()
	cfg.Disks, cfg.Nodes, cfg.TasksPerNode, cfg.ParallelBitmapIO = d, p, t, parIO
	if sharedNothing {
		cfg.Architecture = mdhf.SharedNothing
	}
	w, err := mdhf.Open(ctx, mdhf.Config{
		Star:          mdhf.APB1(),
		Fragmentation: fragText,
		Seed:          seed,
	}, mdhf.WithSimConfig(cfg), mdhf.WithClustering(cluster))
	if err != nil {
		return err
	}
	defer w.Close()
	qt, err := mdhf.QueryTypeByName(qtName)
	if err != nil {
		return err
	}
	gen := mdhf.NewQueryGenerator(w.Star(), seed)
	qs := make([]mdhf.Query, queries)
	for i := range qs {
		if qs[i], err = gen.Next(qt); err != nil {
			return err
		}
		if groupBy != "" {
			gq, err := mdhf.ParseQuery(w.Star(), mdhf.FormatQuery(w.Star(), qs[i])+" group by "+groupBy)
			if err != nil {
				return err
			}
			qs[i] = gq
		}
	}
	rs, err := w.Simulate(ctx, qs...)
	if err != nil {
		return err
	}
	fmt.Printf("fragmentation %s, query %s, d=%d p=%d t=%d parallel-bitmap-io=%v arch=%v cluster=%d\n",
		w.Fragmentation(), qtName, d, p, t, parIO, cfg.Architecture, cluster)
	if groupBy != "" && len(qs) > 0 {
		c := mdhf.EstimateCost(w.Fragmentation(), w.Indexes(), qs[0], mdhf.DefaultCostParams())
		path := "per-row fallback"
		if c.GroupAligned {
			path = "fragment-aligned (constant key per fragment)"
		}
		fmt.Printf("group by %s: ~%d groups expected, %s; grouping adds no simulated I/O\n", groupBy, c.Groups, path)
	}
	for i, r := range rs {
		fmt.Printf("  query %d: %8.1f s  (%d subqueries, %d disk ops, %d pages, mean disk util %.2f, buffer hit %.2f)\n",
			i+1, r.ResponseTime, r.Subqueries, r.DiskOps, r.DiskPages, r.MeanDiskUtil, r.BufferHitRate)
	}
	fmt.Printf("mean response time: %.1f s\n", mdhf.MeanResponseTime(rs))
	return nil
}
