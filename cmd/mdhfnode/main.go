// Command mdhfnode serves one node of an MDHF cluster over HTTP — the
// server side of mdhf.OpenCluster(..., mdhf.WithNodeAddrs(...)). It
// generates the fact table deterministically from the schema scale and
// seed, keeps only the shard the cluster placement assigns to its node
// index, and serves scattered sub-queries, appends, compactions and
// stats on the given address.
//
// Every node of a cluster must be started with identical -frag, -nodes,
// -scheme, -scale and -seed (they are the sharding contract); only
// -node and -addr differ per process.
//
// Usage:
//
//	mdhfnode -addr :7070 -frag "time::month, product::group" -nodes 4 -node 0
//	mdhfnode -addr :7071 -frag "time::month, product::group" -nodes 4 -node 1 ...
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	mdhf "repro"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	fragText := flag.String("frag", "time::month, product::group", "MDHF fragmentation (identical across the cluster)")
	nodes := flag.Int("nodes", 1, "cluster node count (identical across the cluster)")
	node := flag.Int("node", 0, "this node's index in [0,nodes)")
	gap := flag.Bool("gap", false, "use the gap round-robin node placement scheme")
	scale := flag.Int("scale", 60, "APB1Scaled reduction factor of the generated warehouse")
	seed := flag.Int64("seed", 1, "deterministic data generation seed (identical across the cluster)")
	workers := flag.Int("workers", 0, "node worker pool size (<1 = one per CPU)")
	admit := flag.Int("admit", 0, "admission limit (0 = unbounded)")
	onDisk := flag.String("ondisk", "", "serve from paged files under this directory (empty = in-memory engine)")
	disks := flag.Int("disks", 0, "decluster the on-disk backend over this many virtual disks")
	compress := flag.Bool("compress", false, "WAH-compressed bitmaps")
	ioDelay := flag.Duration("iodelay", 0, "simulated per-access disk latency (on-disk only)")
	flag.Parse()

	if *node < 0 || *node >= *nodes {
		fmt.Fprintf(os.Stderr, "mdhfnode: -node %d out of range [0,%d)\n", *node, *nodes)
		os.Exit(2)
	}
	star := mdhf.APB1Scaled(*scale)
	spec, err := mdhf.ParseFragmentation(star, *fragText)
	if err != nil {
		log.Fatalf("mdhfnode: %v", err)
	}
	scheme := mdhf.RoundRobin
	if *gap {
		scheme = mdhf.GapRoundRobin
	}
	cl := mdhf.Placement{Disks: *nodes, Scheme: scheme}

	log.Printf("mdhfnode: generating APB1Scaled(%d) seed %d ...", *scale, *seed)
	table, err := mdhf.GenerateData(star, *seed)
	if err != nil {
		log.Fatalf("mdhfnode: %v", err)
	}
	shard := mdhf.PartitionFactTable(spec, cl, table)[*node]
	log.Printf("mdhfnode: node %d/%d owns %d of %d rows", *node, *nodes, shard.N(), table.N())

	cfg := mdhf.ClusterNodeConfig{
		Spec:       spec,
		Indexes:    mdhf.APB1Indexes(star),
		Index:      *node,
		Cluster:    cl,
		Workers:    *workers,
		AdmitLimit: *admit,
		Compress:   *compress,
	}
	if *onDisk != "" {
		cfg.OnDisk = true
		cfg.Dir = *onDisk
		cfg.Disks = *disks
		cfg.Staggered = true
		if *ioDelay > 0 {
			cfg.IODelay = *ioDelay
			cfg.IODelaySet = true
		}
	}
	n, err := mdhf.NewClusterNode(cfg, shard)
	if err != nil {
		log.Fatalf("mdhfnode: %v", err)
	}
	defer n.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mdhf.NewNodeHandler(n),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("mdhfnode: node %d serving on %s", *node, *addr)
	log.Fatal(srv.ListenAndServe())
}
