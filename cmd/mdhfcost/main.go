// Command mdhfcost prints the analytical results of the MDHF study:
// Table 1 (hierarchical encoding), Table 3 (I/O characteristics of 1STORE),
// Table 6 (fragmentation parameters), the bitmap inventory, and ad-hoc cost
// estimates for arbitrary fragmentation/query pairs.
//
// Usage:
//
//	mdhfcost -table all
//	mdhfcost -frag "time::month, product::group" -query "customer::store=7"
//	mdhfcost -frag "time::month" -query "customer::store=7" -query "product::code=11" -workers 4
//	mdhfcost -frag "time::month, product::group" -query "product::code=11" -disks 100 -scheme gap
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	mdhf "repro"
)

// queryList collects repeated -query flags.
type queryList []string

func (q *queryList) String() string { return fmt.Sprint(*q) }
func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

func main() {
	table := flag.String("table", "", "table to print: 1, 3, 6, bitmaps, or all")
	fragText := flag.String("frag", "", "fragmentation, e.g. \"time::month, product::group\"")
	var queries queryList
	flag.Var(&queries, "query", "query, e.g. \"customer::store=7\" (repeatable)")
	workers := flag.Int("workers", 0, "parallel estimate workers for repeated -query flags (<1 = one per CPU)")
	groupBy := flag.String("groupby", "", "GROUP BY levels appended to every -query, e.g. \"time::month, product::family\"")
	disks := flag.Int("disks", 0, "also model response time on this many declustered disks (per-disk queue model)")
	scheme := flag.String("scheme", "rr", "disk placement scheme: rr (round-robin) or gap")
	access := flag.Duration("access", 12*time.Millisecond, "per-disk access time for the queue model (Table 4: seek + settle)")
	flag.Parse()

	if *table == "" && *fragText == "" {
		*table = "all"
	}
	switch *table {
	case "1":
		printTable1()
	case "3":
		printTable3()
	case "6":
		printTable6()
	case "bitmaps":
		printBitmaps()
	case "all":
		printTable1()
		fmt.Println()
		printTable3()
		fmt.Println()
		printTable6()
		fmt.Println()
		printBitmaps()
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}

	if *fragText != "" {
		if err := printEstimates(*fragText, queries, *groupBy, *workers, *disks, *scheme, *access); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func printTable1() {
	rows, pattern := mdhf.Table1()
	fmt.Println("Table 1: Hierarchy representation in encoded bitmap join indices (PRODUCT)")
	fmt.Printf("%-10s %15s %16s %6s %6s\n", "level", "#total elements", "#within parent", "bits", "paper")
	for _, r := range rows {
		fmt.Printf("%-10s %15d %16d %6d %6d\n", r.Level, r.TotalElements, r.WithinParent, r.Bits, r.PaperBits)
	}
	fmt.Printf("sample bit pattern: %s\n", pattern)
}

func printTable3() {
	cols := mdhf.Table3()
	fmt.Println("Table 3: I/O characteristics for query 1STORE")
	fmt.Printf("%-28s %16s %16s\n", "", cols[0].Label, cols[1].Label)
	fmt.Printf("%-28s %16s %16s\n", "fragmentation", cols[0].Fragmentation, cols[1].Fragmentation)
	fmt.Printf("%-28s %16d %16d\n", "#fragments to process", cols[0].Cost.Fragments, cols[1].Cost.Fragments)
	fmt.Printf("%-28s %16d %16d\n", "  paper", cols[0].PaperFragments, cols[1].PaperFragments)
	fmt.Printf("%-28s %16d %16d\n", "#fact table I/O [pages]", cols[0].Cost.FactPages, cols[1].Cost.FactPages)
	fmt.Printf("%-28s %16d %16d\n", "  paper", cols[0].PaperFactIO, cols[1].PaperFactIO)
	fmt.Printf("%-28s %16d %16d\n", "#bitmap I/O [pages]", cols[0].Cost.BitmapPages, cols[1].Cost.BitmapPages)
	fmt.Printf("%-28s %16d %16d\n", "  paper", cols[0].PaperBitmapIO, cols[1].PaperBitmapIO)
	fmt.Printf("%-28s %16.0f %16.0f\n", "total I/O size [MB]", cols[0].Cost.TotalMB(), cols[1].Cost.TotalMB())
	fmt.Printf("%-28s %16.0f %16.0f\n", "  paper", cols[0].PaperTotalMB, cols[1].PaperTotalMB)
}

func printTable6() {
	fmt.Println("Table 6: Fragmentation parameters for experiment 3")
	fmt.Printf("%-35s %12s %22s\n", "fragmentation", "#fragments", "bitmap frag [pages]")
	for _, r := range mdhf.Table6() {
		fmt.Printf("%-35s %12d %12.2f (paper %.2f)\n", r.Fragmentation, r.Fragments, r.BitmapFragPages, r.PaperBitmapFragPages)
	}
}

func printBitmaps() {
	inv := mdhf.Bitmaps()
	fmt.Println("Bitmap inventory (Sections 3.2, 4.2)")
	fmt.Printf("maximum bitmaps:                 %d (paper 76)\n", inv.MaxBitmaps)
	fmt.Printf("surviving under FMonthGroup:     %d (paper 32)\n", inv.SurvivingUnderFMonthGroup)
}

// printEstimates opens an analysis-only Warehouse (no fact data is ever
// generated) and explains every -query under the fragmentation, fanning
// the analyses out over the warehouse's shared worker pool and printing
// the results in flag order. With -disks the warehouse models the
// declustered placement and each Explain carries the per-disk queue
// response estimate.
func printEstimates(fragText string, queryTexts []string, groupBy string, workers, disks int, schemeName string, access time.Duration) error {
	ctx := context.Background()
	opts := []mdhf.Option{mdhf.WithWorkers(workers)}
	sch := mdhf.RoundRobin
	if disks > 0 {
		switch schemeName {
		case "rr", "round-robin":
		case "gap", "gap-round-robin":
			sch = mdhf.GapRoundRobin
		default:
			return fmt.Errorf("unknown scheme %q (want rr or gap)", schemeName)
		}
		opts = append(opts, mdhf.WithDisks(disks, sch), mdhf.WithIODelay(access))
	}
	w, err := mdhf.Open(ctx, mdhf.Config{Star: mdhf.APB1(), Fragmentation: fragText}, opts...)
	if err != nil {
		return err
	}
	defer w.Close()
	spec := w.Fragmentation()
	if len(queryTexts) == 0 {
		fmt.Printf("%s: %d fragments, %.2f-page bitmap fragments\n",
			spec, spec.NumFragments(), spec.BitmapFragmentPages())
		return nil
	}
	qs := make([]mdhf.Query, len(queryTexts))
	for i, text := range queryTexts {
		if groupBy != "" {
			text += " group by " + groupBy
		}
		if qs[i], err = mdhf.ParseQuery(w.Star(), text); err != nil {
			return err
		}
	}
	ests, err := w.ExplainAll(ctx, qs)
	if err != nil {
		return err
	}
	fmt.Printf("fragmentation:  %s\n", spec)
	for i, e := range ests {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("query:          %s  (class %s, %s)\n", mdhf.FormatQuery(w.Star(), qs[i]), e.Class, e.Cost.Class)
		fmt.Printf("fragments:      %d of %d\n", e.Cost.Fragments, spec.NumFragments())
		if len(qs[i].GroupBy) > 0 {
			path := "per-row fallback"
			if e.Cost.GroupAligned {
				path = "fragment-aligned (constant key per fragment, no per-row work)"
			}
			fmt.Printf("groups:         ~%d expected, %s; grouping adds no I/O\n", e.Cost.Groups, path)
		}
		fmt.Printf("bitmaps/frag:   %d\n", e.Cost.BitmapsPerFragment)
		fmt.Printf("fact I/O:       %d pages in %d ops\n", e.Cost.FactPages, e.Cost.FactIOs)
		fmt.Printf("bitmap I/O:     %d pages in %d ops\n", e.Cost.BitmapPages, e.Cost.BitmapIOs)
		fmt.Printf("total:          %.1f MB\n", e.Cost.TotalMB())
		if disks > 0 {
			r := e.Response
			fmt.Printf("on %d disks (%s, staggered): %.1f s response, %d disks used, bottleneck %.0f of %d I/Os, imbalance %.2f\n",
				disks, sch, r.Response.Seconds(), r.DisksUsed, r.BottleneckIOs, r.Cost.TotalIOs(), r.Imbalance)
		}
	}
	return nil
}
