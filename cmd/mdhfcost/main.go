// Command mdhfcost prints the analytical results of the MDHF study:
// Table 1 (hierarchical encoding), Table 3 (I/O characteristics of 1STORE),
// Table 6 (fragmentation parameters), the bitmap inventory, and ad-hoc cost
// estimates for arbitrary fragmentation/query pairs.
//
// Usage:
//
//	mdhfcost -table all
//	mdhfcost -frag "time::month, product::group" -query "customer::store=7"
//	mdhfcost -frag "time::month" -query "customer::store=7" -query "product::code=11" -workers 4
//	mdhfcost -frag "time::month, product::group" -query "product::code=11" -disks 100 -scheme gap
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/alloc"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/frag"
	"repro/internal/schema"
)

// queryList collects repeated -query flags.
type queryList []string

func (q *queryList) String() string { return fmt.Sprint(*q) }
func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

func main() {
	table := flag.String("table", "", "table to print: 1, 3, 6, bitmaps, or all")
	fragText := flag.String("frag", "", "fragmentation, e.g. \"time::month, product::group\"")
	var queries queryList
	flag.Var(&queries, "query", "query, e.g. \"customer::store=7\" (repeatable)")
	workers := flag.Int("workers", 0, "parallel estimate workers for repeated -query flags (<1 = one per CPU)")
	disks := flag.Int("disks", 0, "also model response time on this many declustered disks (per-disk queue model)")
	scheme := flag.String("scheme", "rr", "disk placement scheme: rr (round-robin) or gap")
	access := flag.Duration("access", 12*time.Millisecond, "per-disk access time for the queue model (Table 4: seek + settle)")
	flag.Parse()

	if *table == "" && *fragText == "" {
		*table = "all"
	}
	switch *table {
	case "1":
		printTable1()
	case "3":
		printTable3()
	case "6":
		printTable6()
	case "bitmaps":
		printBitmaps()
	case "all":
		printTable1()
		fmt.Println()
		printTable3()
		fmt.Println()
		printTable6()
		fmt.Println()
		printBitmaps()
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}

	if *fragText != "" {
		if err := printEstimates(*fragText, queries, *workers, *disks, *scheme, *access); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func printTable1() {
	rows, pattern := experiments.Table1()
	fmt.Println("Table 1: Hierarchy representation in encoded bitmap join indices (PRODUCT)")
	fmt.Printf("%-10s %15s %16s %6s %6s\n", "level", "#total elements", "#within parent", "bits", "paper")
	for _, r := range rows {
		fmt.Printf("%-10s %15d %16d %6d %6d\n", r.Level, r.TotalElements, r.WithinParent, r.Bits, r.PaperBits)
	}
	fmt.Printf("sample bit pattern: %s\n", pattern)
}

func printTable3() {
	cols := experiments.Table3()
	fmt.Println("Table 3: I/O characteristics for query 1STORE")
	fmt.Printf("%-28s %16s %16s\n", "", cols[0].Label, cols[1].Label)
	fmt.Printf("%-28s %16s %16s\n", "fragmentation", cols[0].Fragmentation, cols[1].Fragmentation)
	fmt.Printf("%-28s %16d %16d\n", "#fragments to process", cols[0].Cost.Fragments, cols[1].Cost.Fragments)
	fmt.Printf("%-28s %16d %16d\n", "  paper", cols[0].PaperFragments, cols[1].PaperFragments)
	fmt.Printf("%-28s %16d %16d\n", "#fact table I/O [pages]", cols[0].Cost.FactPages, cols[1].Cost.FactPages)
	fmt.Printf("%-28s %16d %16d\n", "  paper", cols[0].PaperFactIO, cols[1].PaperFactIO)
	fmt.Printf("%-28s %16d %16d\n", "#bitmap I/O [pages]", cols[0].Cost.BitmapPages, cols[1].Cost.BitmapPages)
	fmt.Printf("%-28s %16d %16d\n", "  paper", cols[0].PaperBitmapIO, cols[1].PaperBitmapIO)
	fmt.Printf("%-28s %16.0f %16.0f\n", "total I/O size [MB]", cols[0].Cost.TotalMB(), cols[1].Cost.TotalMB())
	fmt.Printf("%-28s %16.0f %16.0f\n", "  paper", cols[0].PaperTotalMB, cols[1].PaperTotalMB)
}

func printTable6() {
	fmt.Println("Table 6: Fragmentation parameters for experiment 3")
	fmt.Printf("%-35s %12s %22s\n", "fragmentation", "#fragments", "bitmap frag [pages]")
	for _, r := range experiments.Table6() {
		fmt.Printf("%-35s %12d %12.2f (paper %.2f)\n", r.Fragmentation, r.Fragments, r.BitmapFragPages, r.PaperBitmapFragPages)
	}
}

func printBitmaps() {
	inv := experiments.Bitmaps()
	fmt.Println("Bitmap inventory (Sections 3.2, 4.2)")
	fmt.Printf("maximum bitmaps:                 %d (paper 76)\n", inv.MaxBitmaps)
	fmt.Printf("surviving under FMonthGroup:     %d (paper 32)\n", inv.SurvivingUnderFMonthGroup)
}

// printEstimates estimates every -query under the fragmentation, fanning
// the analyses out over the shared worker pool and printing the results
// in flag order. With -disks it also prints the per-disk queue model's
// response estimate for each query.
func printEstimates(fragText string, queryTexts []string, workers, disks int, schemeName string, access time.Duration) error {
	s := schema.APB1()
	spec, err := frag.Parse(s, fragText)
	if err != nil {
		return err
	}
	var placement alloc.Placement
	if disks > 0 {
		sch := alloc.RoundRobin
		switch schemeName {
		case "rr", "round-robin":
		case "gap", "gap-round-robin":
			sch = alloc.GapRoundRobin
		default:
			return fmt.Errorf("unknown scheme %q (want rr or gap)", schemeName)
		}
		placement = alloc.Placement{Disks: disks, Scheme: sch, Staggered: true}
	}
	if len(queryTexts) == 0 {
		fmt.Printf("%s: %d fragments, %.2f-page bitmap fragments\n",
			spec, spec.NumFragments(), spec.BitmapFragmentPages())
		return nil
	}
	cfg := frag.APB1Indexes(s)
	type estimate struct {
		q frag.Query
		c cost.QueryCost
	}
	ests, err := exec.Map(context.Background(), workers, len(queryTexts), func(i int) (estimate, error) {
		q, err := frag.ParseQuery(s, queryTexts[i])
		if err != nil {
			return estimate{}, err
		}
		return estimate{q: q, c: cost.Estimate(spec, cfg, q, cost.DefaultParams())}, nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("fragmentation:  %s\n", spec)
	for i, e := range ests {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("query:          %s  (class %s, %s)\n", queryTexts[i], spec.Classify(e.q), e.c.Class)
		fmt.Printf("fragments:      %d of %d\n", e.c.Fragments, spec.NumFragments())
		fmt.Printf("bitmaps/frag:   %d\n", e.c.BitmapsPerFragment)
		fmt.Printf("fact I/O:       %d pages in %d ops\n", e.c.FactPages, e.c.FactIOs)
		fmt.Printf("bitmap I/O:     %d pages in %d ops\n", e.c.BitmapPages, e.c.BitmapIOs)
		fmt.Printf("total:          %.1f MB\n", e.c.TotalMB())
		if disks > 0 {
			r := cost.EstimateResponse(spec, cfg, e.q, cost.DefaultParams(), cost.DiskParams{Placement: placement, AccessTime: access})
			fmt.Printf("on %d disks (%s, staggered): %.1f s response, %d disks used, bottleneck %.0f of %d I/Os, imbalance %.2f\n",
				disks, placement.Scheme, r.Response.Seconds(), r.DisksUsed, r.BottleneckIOs, r.Cost.TotalIOs(), r.Imbalance)
		}
	}
	return nil
}
