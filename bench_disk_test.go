package mdhf

// BenchmarkDiskScaling is the executable form of the paper's
// speedup-vs-disks experiments: the same 1STORE query (every fragment
// relevant, bitmap I/O on each — the widest fan-out) against the
// reduced-scale APB-1 store declustered over 1/2/4/8/16 virtual disks,
// each disk a serialized I/O queue with a simulated per-access delay
// (the disk-model regime). Worker count is fixed at 16, at least the
// widest disk count, so the disks are the bottleneck; response time then
// scales near-linearly with the disk count. Results are asserted
// byte-identical to the single-disk execution before timing.

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkDiskScaling(b *testing.B) {
	store, bf, q := parallelBenchStore(b)

	// Single-disk baseline result, page-cache regime.
	base := workerExecutor(store, bf, 1)
	wantAgg, wantSt, err := base.Execute(q)
	if err != nil {
		b.Fatal(err)
	}

	const delay = 200 * time.Microsecond
	for _, disks := range []int{1, 2, 4, 8, 16} {
		for _, scheme := range []AllocScheme{RoundRobin, GapRoundRobin} {
			placement := Placement{Disks: disks, Scheme: scheme, Staggered: true}
			ds, err := DeclusterStore(store, bf, placement)
			if err != nil {
				b.Fatal(err)
			}
			ex := workerExecutor(store, bf, 16)

			// Byte-identical to the single-disk path before timing.
			gotAgg, gotSt, err := ex.Execute(q)
			if err != nil {
				b.Fatal(err)
			}
			if gotAgg != wantAgg || gotSt != wantSt {
				b.Fatalf("disks=%d %v diverged: %+v/%+v != %+v/%+v", disks, scheme, gotAgg, gotSt, wantAgg, wantSt)
			}

			ds.SetIODelay(delay)
			b.Run(fmt.Sprintf("%v/disks=%d", scheme, disks), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := ex.Execute(q); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(wantSt.FactIOs+wantSt.BitmapIOs), "disk-accesses")
			})
			ds.SetIODelay(0)
		}
	}
	// Restore the store's single-disk behaviour for any benchmark
	// sharing the fixture after us.
	if err := store.Decluster(Placement{}, nil); err != nil {
		b.Fatal(err)
	}
	if err := bf.Decluster(Placement{}, nil); err != nil {
		b.Fatal(err)
	}
}
