package mdhf

// BenchmarkCachedServing measures the caching stack on the workload it
// was built for: a skewed serving mix where most queries confine to the
// current quarter (the paper's hot fragments). It compares an uncached
// disk-latency baseline against the same warehouse with the buffer pool
// and the result cache, asserts the warm cached configuration clears 3x
// the baseline throughput with byte-identical results, asserts appends
// mid-benchmark invalidate only the entries whose fragments they touch,
// and sweeps the hot fraction against a pool sized below the total
// working set. The measured numbers are written to BENCH_cache.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"
)

// cacheBenchReport is the schema of BENCH_cache.json.
type cacheBenchReport struct {
	Benchmark       string  `json:"benchmark"`
	BaseRows        int     `json:"base_rows"`
	IODelayUs       int64   `json:"io_delay_us"`
	PoolBytes       int64   `json:"pool_bytes"`
	ResultCacheCap  int     `json:"result_cache_entries"`
	DistinctQueries int     `json:"distinct_queries"`
	ExecsPerPass    int     `json:"execs_per_pass"`
	HotFraction     float64 `json:"hot_fraction"`

	UncachedQPS   float64 `json:"uncached_qps"`
	CachedColdQPS float64 `json:"cached_cold_qps"`
	CachedWarmQPS float64 `json:"cached_warm_qps"`
	WarmSpeedup   float64 `json:"warm_speedup_vs_uncached"`

	PoolHitRateWarm   float64 `json:"pool_hit_rate_warm"`
	ResultHitRateWarm float64 `json:"result_cache_hit_rate_warm"`

	AppendInvalidations int64 `json:"append_invalidations"`
	AppendRekeys        int64 `json:"append_rekeys"`
	HotStillCached      bool  `json:"hot_still_cached_after_append"`

	SkewSweep []skewPoint `json:"skew_sweep_pool_only"`
}

// skewPoint is one hot-fraction measurement of the pool-only sweep.
type skewPoint struct {
	HotFraction float64 `json:"hot_fraction"`
	PoolHitRate float64 `json:"pool_hit_rate"`
	QPS         float64 `json:"qps"`
}

// cacheBenchWorkload derives the skewed query mix from the schema: hot
// queries confine to the last quarter (and its months), cold queries
// roam the remaining months and the unfragmented customer dimension.
type cacheBenchWorkload struct {
	hot, cold []Query
}

func newCacheBenchWorkload(b *testing.B, star *Star) cacheBenchWorkload {
	parse := func(text string) Query {
		q, err := ParseQuery(star, text)
		if err != nil {
			b.Fatal(err)
		}
		return q
	}
	var timeDim, custDim int
	for d := range star.Dims {
		switch star.Dims[d].Name {
		case "time":
			timeDim = d
		case "customer":
			custDim = d
		}
	}
	months := star.Dims[timeDim].LeafCard()
	quarters := star.Dims[timeDim].Levels[len(star.Dims[timeDim].Levels)-2].Card
	perQuarter := months / quarters
	hotQ := quarters - 1 // "current" quarter: the latest one

	var w cacheBenchWorkload
	w.hot = append(w.hot,
		parse(fmt.Sprintf("time::quarter=%d", hotQ)),
		parse(fmt.Sprintf("time::quarter=%d group by product::group", hotQ)))
	for m := hotQ * perQuarter; m < (hotQ+1)*perQuarter; m++ {
		w.hot = append(w.hot,
			parse(fmt.Sprintf("time::month=%d", m)),
			parse(fmt.Sprintf("time::month=%d group by product::group", m)))
	}
	for m := 0; m < hotQ*perQuarter; m++ {
		w.cold = append(w.cold, parse(fmt.Sprintf("time::month=%d", m)))
	}
	stores := star.Dims[custDim].LeafCard()
	for s := 0; s < 4 && s < stores; s++ {
		w.cold = append(w.cold, parse(fmt.Sprintf("customer::store=%d", s)))
	}
	return w
}

// sequence deals a deterministic skewed execution order: hotFrac of the
// picks come from the hot set.
func (w cacheBenchWorkload) sequence(seed int64, n int, hotFrac float64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, n)
	for i := range out {
		if rng.Float64() < hotFrac {
			out[i] = w.hot[rng.Intn(len(w.hot))]
		} else {
			out[i] = w.cold[rng.Intn(len(w.cold))]
		}
	}
	return out
}

func BenchmarkCachedServing(b *testing.B) {
	ctx := context.Background()
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 2)
	if err != nil {
		b.Fatal(err)
	}
	const (
		ioDelay   = 100 * time.Microsecond
		poolBytes = 64 << 20
		cacheCap  = 256
		execs     = 120
		hotFrac   = 0.8
		seed      = 23
	)
	wl := newCacheBenchWorkload(b, star)
	seqn := wl.sequence(seed, execs, hotFrac)
	baseOpts := []Option{WithWorkers(8), WithDisks(4, RoundRobin), WithIODelay(ioDelay)}
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}

	open := func(extra ...Option) *Warehouse {
		w, err := Open(ctx, cfg, append(append([]Option{}, baseOpts...), extra...)...)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		})
		if _, _, err := w.Query(seqn[0]).Execute(ctx); err != nil { // build outside timing
			b.Fatal(err)
		}
		return w
	}
	pass := func(w *Warehouse, seqn []Query, want []Result) (float64, []Result) {
		recording := want == nil
		start := time.Now()
		for i, q := range seqn {
			res, _, err := w.Query(q).Execute(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if recording {
				want = append(want, res)
			} else if !reflect.DeepEqual(res, want[i]) {
				b.Fatalf("execution %d diverged from the uncached baseline", i)
			}
		}
		return float64(len(seqn)) / time.Since(start).Seconds(), want
	}

	report := cacheBenchReport{
		Benchmark: "BenchmarkCachedServing", BaseRows: tab.N(),
		IODelayUs: ioDelay.Microseconds(), PoolBytes: poolBytes, ResultCacheCap: cacheCap,
		DistinctQueries: len(wl.hot) + len(wl.cold), ExecsPerPass: execs, HotFraction: hotFrac,
	}
	var baseline []Result

	b.Run("uncached", func(b *testing.B) {
		w := open()
		for i := 0; i < b.N; i++ {
			report.UncachedQPS, baseline = pass(w, seqn, nil)
		}
		b.ReportMetric(report.UncachedQPS, "q/s")
	})

	b.Run("cached", func(b *testing.B) {
		w := open(WithBufferPool(poolBytes), WithResultCache(cacheCap))
		for i := 0; i < b.N; i++ {
			report.CachedColdQPS, _ = pass(w, seqn, baseline)
			pre := w.ServingStats()
			report.CachedWarmQPS, _ = pass(w, seqn, baseline)
			post := w.ServingStats()
			if lookups := post.Cache.Hits + post.Cache.Misses - pre.Cache.Hits - pre.Cache.Misses; lookups > 0 {
				report.ResultHitRateWarm = float64(post.Cache.Hits-pre.Cache.Hits) / float64(lookups)
			}
			report.PoolHitRateWarm = post.Cache.Pool.HitRate()
		}
		b.ReportMetric(report.CachedWarmQPS, "q/s")
		report.WarmSpeedup = report.CachedWarmQPS / report.UncachedQPS
		if report.WarmSpeedup < 3 {
			b.Fatalf("warm cached serving %.0f q/s is only %.1fx the uncached %.0f q/s, want >= 3x",
				report.CachedWarmQPS, report.WarmSpeedup, report.UncachedQPS)
		}

		// Append one row into a cold month mid-serving: only entries whose
		// region contains the touched fragment may be invalidated — every
		// hot (current-quarter) entry must keep hitting without recompute.
		for _, q := range wl.hot { // ensure each hot query is cached
			if _, _, err := w.Query(q).Execute(ctx); err != nil {
				b.Fatal(err)
			}
		}
		row := FactRow{Leaves: make([]int32, len(star.Dims)), UnitsSold: 1, DollarSales: 1, Cost: 1}
		pre := w.ServingStats()
		if err := w.Append(ctx, []FactRow{row}); err != nil { // month 0: outside the hot quarter
			b.Fatal(err)
		}
		post := w.ServingStats()
		report.AppendInvalidations = post.Cache.Invalidations - pre.Cache.Invalidations
		report.AppendRekeys = post.Cache.Rekeys - pre.Cache.Rekeys
		if report.AppendInvalidations == 0 || report.AppendRekeys == 0 {
			b.Fatalf("append invalidated %d and re-keyed %d entries — want both partial (fragment-granular)",
				report.AppendInvalidations, report.AppendRekeys)
		}
		report.HotStillCached = true
		for _, q := range wl.hot {
			if _, st, err := w.Query(q).Execute(ctx); err != nil {
				b.Fatal(err)
			} else if !st.CacheHit {
				report.HotStillCached = false
			}
		}
		if !report.HotStillCached {
			b.Fatal("a hot-quarter entry was evicted by an append confined to a cold month")
		}
	})

	// Pool-only skew sweep: with the pool sized at a quarter of the fact
	// volume, the hit rate tracks how concentrated the workload is.
	b.Run("skew-sweep", func(b *testing.B) {
		sweepPool := int64(tab.N() / star.TuplesPerPage * star.PageSize / 4)
		if sweepPool < 1<<20 {
			sweepPool = 1 << 20
		}
		for i := 0; i < b.N; i++ {
			report.SkewSweep = report.SkewSweep[:0]
			for _, frac := range []float64{0.5, 0.8, 0.95} {
				w := open(WithBufferPool(sweepPool))
				qps, _ := pass(w, wl.sequence(seed+1, execs, frac), nil)
				st := w.ServingStats()
				report.SkewSweep = append(report.SkewSweep, skewPoint{
					HotFraction: frac, PoolHitRate: st.Cache.Pool.HitRate(), QPS: qps,
				})
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cache.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("BENCH_cache.json: uncached %.0f q/s, cached cold %.0f q/s, warm %.0f q/s (%.1fx); pool hit rate %.2f, result hit rate %.2f\n",
		report.UncachedQPS, report.CachedColdQPS, report.CachedWarmQPS, report.WarmSpeedup,
		report.PoolHitRateWarm, report.ResultHitRateWarm)
}
