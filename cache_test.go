package mdhf

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"
)

// cacheOpts is the caching configuration the equivalence tests layer onto
// every backend: a pool big enough to hold the tiny dataset plus a result
// cache with room for the whole query list.
func cacheOpts(extra ...Option) []Option {
	return append([]Option{WithBufferPool(4 << 20), WithResultCache(64)}, extra...)
}

// TestCachedEquivalence is the caching oracle: a warehouse serving through
// the buffer pool and the result cache must answer every query
// byte-identically to an uncached warehouse over the same rows — cold and
// warm, across appends (fragment-granular invalidation) and across
// compactions (epoch roll re-keying) — on every backend. Warm repeats must
// actually come from the cache.
func TestCachedEquivalence(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	n := full.N()
	base := prefixTable(full, n*2/3)
	extra := splitRows(full, n*2/3, n)
	again := splitRows(full, 0, n/4)
	cfg := func(tab *FactTable) Config {
		return Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}
	}
	for _, bk := range ingestBackends {
		t.Run(bk.name, func(t *testing.T) {
			w, err := Open(ctx, cfg(base), append(cacheOpts(), bk.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			oracle, err := Open(ctx, cfg(full), bk.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer oracle.Close()

			for _, rows := range [][]FactRow{extra[:len(extra)/2], extra[len(extra)/2:]} {
				if err := w.Append(ctx, rows); err != nil {
					t.Fatal(err)
				}
			}
			check := func(phase string, wantEpoch int64) {
				t.Helper()
				for _, text := range ingestQueries {
					q, err := ParseQuery(star, text)
					if err != nil {
						t.Fatal(err)
					}
					want, _, err := oracle.Query(q).Execute(ctx)
					if err != nil {
						t.Fatal(err)
					}
					cold, cst, err := w.Query(q).Execute(ctx)
					if err != nil {
						t.Fatalf("%s: %q: %v", phase, text, err)
					}
					warm, wst, err := w.Query(q).Execute(ctx)
					if err != nil {
						t.Fatalf("%s: %q warm: %v", phase, text, err)
					}
					if !reflect.DeepEqual(cold, want) {
						t.Errorf("%s: %q: cold cached result diverged from oracle", phase, text)
					}
					if !reflect.DeepEqual(warm, want) {
						t.Errorf("%s: %q: warm cached result diverged from oracle", phase, text)
					}
					if !wst.CacheHit {
						t.Errorf("%s: %q: repeat execution not served from the result cache", phase, text)
					}
					if wst.IO.FactIOs != 0 || wst.IO.BitmapIOs != 0 {
						t.Errorf("%s: %q: cache hit still did I/O: %+v", phase, text, wst.IO)
					}
					if cst.Epoch != wantEpoch || wst.Epoch != wantEpoch {
						t.Errorf("%s: %q: epochs %d/%d, want %d", phase, text, cst.Epoch, wst.Epoch, wantEpoch)
					}
				}
			}

			check("pre-compaction", 0)
			st := w.ServingStats()
			if st.Cache.Hits < int64(len(ingestQueries)) {
				t.Fatalf("pre-compaction cache hits %d, want >= %d", st.Cache.Hits, len(ingestQueries))
			}
			if st.Cache.Capacity != 64 || st.Cache.Entries == 0 {
				t.Fatalf("cache occupancy: %+v", st.Cache)
			}

			if err := w.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			// The compaction re-keys instead of flushing: the very first
			// post-compaction execution of an already-cached query must hit.
			q0, err := ParseQuery(star, ingestQueries[0])
			if err != nil {
				t.Fatal(err)
			}
			if _, pst, err := w.Query(q0).Execute(ctx); err != nil {
				t.Fatal(err)
			} else if !pst.CacheHit {
				t.Error("first post-compaction execution missed: compaction flushed instead of re-keying")
			} else if pst.Epoch != 1 {
				t.Errorf("post-compaction hit pinned epoch %d, want 1", pst.Epoch)
			}
			if st := w.ServingStats(); st.Cache.Rekeys == 0 {
				t.Fatal("compaction recorded no re-keys")
			}
			check("post-compaction", 1)

			if err := w.Append(ctx, again); err != nil {
				t.Fatal(err)
			}
			oracle2, err := Open(ctx, cfg(withRows(full, again)), bk.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer oracle2.Close()
			oracle = oracle2
			check("post-compaction append", 1)

			st = w.ServingStats()
			if st.Cache.Invalidations == 0 {
				t.Fatal("appends evicted nothing from the result cache")
			}
			if bk.name != "in-memory" && bk.name != "in-memory/compressed" {
				if st.Cache.Pool.Hits == 0 {
					t.Fatalf("on-disk backend never hit the buffer pool: %+v", st.Cache.Pool)
				}
				if st.Cache.Pool.UsedBytes > st.Cache.Pool.BudgetBytes {
					t.Fatalf("pool over budget: %+v", st.Cache.Pool)
				}
			}
		})
	}
}

// TestPoolOnlyEquivalence isolates level 1: with just the buffer pool (no
// result cache) every execution runs the real executor, so warm runs must
// report pool hits in their own Stats.IO while staying byte-identical —
// and an epoch roll must start cold, proving entries are epoch-keyed.
func TestPoolOnlyEquivalence(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	n := full.N()
	base := prefixTable(full, n*3/4)
	extra := splitRows(full, n*3/4, n)
	cfg := func(tab *FactTable) Config {
		return Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}
	}
	backends := []struct {
		name string
		opts []Option
	}{
		{"on-disk", []Option{WithOnDisk("")}},
		{"declustered/compressed", []Option{WithDisks(3, RoundRobin), WithCompression()}},
	}
	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			w, err := Open(ctx, cfg(base), append([]Option{WithBufferPool(4 << 20)}, bk.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			oracle, err := Open(ctx, cfg(full), bk.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer oracle.Close()
			if err := w.Append(ctx, extra); err != nil {
				t.Fatal(err)
			}

			run := func(text string) (Result, Stats) {
				t.Helper()
				q, err := ParseQuery(star, text)
				if err != nil {
					t.Fatal(err)
				}
				res, st, err := w.Query(q).Execute(ctx)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := oracle.Query(q).Execute(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, want) {
					t.Fatalf("%q: pooled result diverged from oracle", text)
				}
				return res, st
			}

			for _, text := range ingestQueries {
				_, cold := run(text)
				if cold.CacheHit {
					t.Fatalf("%q: result-cache hit without a result cache", text)
				}
				_, warm := run(text)
				if warm.IO.PoolHits == 0 {
					t.Errorf("%q: warm run reported no pool hits: %+v", text, warm.IO)
				}
				// Logical I/O is pool-independent: the executor reads the same
				// granules either way.
				if warm.IO.FactIOs != cold.IO.FactIOs || warm.IO.FactPages != cold.IO.FactPages {
					t.Errorf("%q: logical fact I/O changed with pool warmth: cold %+v warm %+v", text, cold.IO, warm.IO)
				}
			}

			// Roll the epoch: the rebuilt backend's reads key differently, so
			// the first post-compaction run must miss the pool entirely.
			if err := w.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			_, rolled := run(ingestQueries[0])
			if rolled.Epoch != 1 {
				t.Fatalf("post-compaction epoch %d", rolled.Epoch)
			}
			if rolled.IO.PoolHits != 0 {
				t.Fatalf("epoch-1 execution hit epoch-0 pool entries: %+v", rolled.IO)
			}
			if rolled.IO.PoolMisses == 0 {
				t.Fatalf("epoch-1 execution consulted no pool: %+v", rolled.IO)
			}
			_, rewarmed := run(ingestQueries[0])
			if rewarmed.IO.PoolHits == 0 {
				t.Fatalf("epoch-1 rerun did not re-warm the pool: %+v", rewarmed.IO)
			}
		})
	}
}

// TestCacheInvalidationGranularity pins the append rule end to end: after
// caching one query per month, an append confined to a single fragment
// must evict exactly the entries whose confinement region contains that
// fragment — the other months keep hitting without recomputation.
func TestCacheInvalidationGranularity(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group", Table: full},
		WithOnDisk(""), WithBufferPool(4<<20), WithResultCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	months := star.Dims[2].Levels[len(star.Dims[2].Levels)-1].Card // time is dim 2, leaf level = month
	queries := make([]*PreparedQuery, months)
	for m := 0; m < months; m++ {
		q, err := ParseQuery(star, fmt.Sprintf("time::month=%d", m))
		if err != nil {
			t.Fatal(err)
		}
		queries[m] = w.Query(q)
		if _, _, err := queries[m].Execute(ctx); err != nil { // cold: fills the cache
			t.Fatal(err)
		}
	}

	// One appended row, touching exactly one fragment — month 1's.
	const touchedMonth = 1
	row := FactRow{Leaves: make([]int32, len(star.Dims)), UnitsSold: 5, DollarSales: 7, Cost: 3}
	row.Leaves[2] = touchedMonth
	buf := make([]int, len(star.Dims))
	for d, leaf := range row.Leaves {
		buf[d] = int(leaf)
	}
	touchedID := w.spec.ID(w.spec.CoordOf(buf))
	before := w.ServingStats()
	if err := w.Append(ctx, []FactRow{row}); err != nil {
		t.Fatal(err)
	}
	after := w.ServingStats()
	if d := after.Cache.Invalidations - before.Cache.Invalidations; d != 1 {
		t.Fatalf("append invalidated %d entries, want exactly the touched month's 1", d)
	}
	if after.Cache.Rekeys <= before.Cache.Rekeys {
		t.Fatal("append re-keyed nothing: untouched entries were flushed")
	}

	// An uncached oracle over the appended table checks the recomputation.
	oracle, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group",
		Table: withRows(full, []FactRow{row})})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	coord := w.spec.Coord(touchedID)
	for m := 0; m < months; m++ {
		res, st, err := queries[m].Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.Query(queries[m].Query()).Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("month %d diverged from oracle after the append", m)
		}
		inRegion := regionTouches(w.spec.Relevant(queries[m].Query()), [][]int{coord})
		if m == touchedMonth {
			if !inRegion {
				t.Fatal("touched fragment not in its own month's region")
			}
			if st.CacheHit {
				t.Fatal("touched month served stale from the cache")
			}
			if st.DeltaRows != 1 {
				t.Fatalf("touched month folded %d delta rows, want 1", st.DeltaRows)
			}
		} else {
			if inRegion {
				t.Fatalf("month %d region unexpectedly contains the touched fragment", m)
			}
			if !st.CacheHit {
				t.Fatalf("untouched month %d was recomputed after a disjoint append", m)
			}
		}
	}
}

// TestCacheSingleflight collapses identical concurrent executions: with a
// slow backend, one leader computes while the rest join its result; every
// result is byte-identical and ServingStats counts the collapses.
func TestCacheSingleflight(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group", Table: MustGenerateData(star, 8)},
		WithOnDisk(""), WithIODelay(2*time.Millisecond), WithResultCache(16))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	warm, err := ParseQuery(star, "time::month=3")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Query(warm).Execute(ctx); err != nil { // build the backend outside the race
		t.Fatal(err)
	}

	q, err := ParseQuery(star, "time::quarter=1 group by product::group")
	if err != nil {
		t.Fatal(err)
	}
	const racers = 8
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []Result
		stats   []Stats
	)
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, st, err := w.Query(q).Execute(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			results = append(results, res)
			stats = append(stats, st)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(results) != racers {
		t.Fatal("some executions failed")
	}
	var shared, hits, computed int
	for i, st := range stats {
		switch {
		case st.Shared:
			shared++
		case st.CacheHit:
			hits++
		default:
			computed++
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatal("concurrent identical executions diverged")
		}
	}
	if computed < 1 {
		t.Fatalf("no leader computed: shared %d hits %d", shared, hits)
	}
	if shared == 0 {
		t.Fatalf("no execution collapsed onto the leader (computed %d, hits %d)", computed, hits)
	}
	st := w.ServingStats()
	if st.Cache.Shared != int64(shared) {
		t.Fatalf("ServingStats.Cache.Shared = %d, observed %d singleflight followers", st.Cache.Shared, shared)
	}
}

// TestCacheHammer is TestIngestHammer with both cache levels on: Append,
// Execute (several distinct queries), Compact and Close interleave under
// the race detector; every operation either succeeds or reports ErrClosed
// and the owned files are removed.
func TestCacheHammer(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group", Table: prefixTable(full, full.N()/2)},
		WithDisks(3, GapRoundRobin), WithCompression(), WithAutoCompaction(64),
		WithBufferPool(256<<10), WithResultCache(8))
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"time::month=1 group by product::group",
		"time::quarter=1",
		"customer::store=2",
		"group by time::quarter, customer::store",
	}
	queries := make([]Query, len(texts))
	for i, text := range texts {
		if queries[i], err = ParseQuery(star, text); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Query(queries[0]).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	rootDir := w.rootDir

	ok := func(err error) bool { return err == nil || errors.Is(err, ErrClosed) }
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 25; i++ {
				rows := make([]FactRow, 1+rng.Intn(8))
				for r := range rows {
					leaves := make([]int32, len(star.Dims))
					for d := range leaves {
						leaves[d] = int32(rng.Intn(star.Dims[d].LeafCard()))
					}
					rows[r] = FactRow{Leaves: leaves, UnitsSold: 1, DollarSales: 2, Cost: 3}
				}
				if err := w.Append(ctx, rows); !ok(err) {
					errs <- fmt.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, _, err := w.Query(queries[(g+i)%len(queries)]).Execute(ctx); !ok(err) {
					errs <- fmt.Errorf("execute: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := w.Compact(ctx); !ok(err) {
				errs <- fmt.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Close(); err != nil {
			errs <- fmt.Errorf("close: %v", err)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("second close:", err)
	}
	if _, _, err := w.Query(queries[0]).Execute(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("execute after close: %v", err)
	}
	if _, err := os.Stat(rootDir); !os.IsNotExist(err) {
		t.Fatalf("owned root %s not removed: %v", rootDir, err)
	}
}
