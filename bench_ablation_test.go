package mdhf

// Ablation benchmarks for the design choices DESIGN.md §6 calls out:
// staggered vs co-located bitmap allocation, prefetch granule sensitivity,
// prime-disk declustering, and the gap allocation scheme. Plus
// micro-benchmarks of the core data structures.

import (
	"testing"

	"repro/internal/bitmap"
	"repro/internal/experiments"
)

func simStoreOnce(b *testing.B, mutate func(*SimConfig, *Placement)) float64 {
	b.Helper()
	star := APB1()
	icfg := APB1Indexes(star)
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig()
	placement := Placement{Disks: cfg.Disks, Scheme: RoundRobin, Staggered: true}
	mutate(&cfg, &placement)
	placement.Disks = cfg.Disks
	sys, err := NewSimSystem(cfg, icfg, placement, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen := NewQueryGenerator(star, 1)
	q, err := gen.Next(OneStore)
	if err != nil {
		b.Fatal(err)
	}
	rs := sys.Run([]*SimPlan{NewSimPlan(spec, icfg, q, cfg)})
	return rs[0].ResponseTime
}

// BenchmarkAblationStaggeredVsColocated quantifies Figure 5's premise: the
// staggered allocation enables parallel bitmap I/O; co-locating all bitmap
// fragments with their fact fragment serialises it.
func BenchmarkAblationStaggeredVsColocated(b *testing.B) {
	var staggered, colocated float64
	for i := 0; i < b.N; i++ {
		staggered = simStoreOnce(b, func(c *SimConfig, p *Placement) {
			c.TasksPerNode = 2
			p.Staggered = true
		})
		colocated = simStoreOnce(b, func(c *SimConfig, p *Placement) {
			c.TasksPerNode = 2
			p.Staggered = false
		})
	}
	b.ReportMetric(staggered, "s-staggered")
	b.ReportMetric(colocated, "s-colocated")
}

// BenchmarkAblationPrefetchGranule sweeps the fact prefetch size around the
// paper's 8 pages (Section 4.4's threshold driver).
func BenchmarkAblationPrefetchGranule(b *testing.B) {
	var t1, t8, t32 float64
	for i := 0; i < b.N; i++ {
		t1 = simStoreOnce(b, func(c *SimConfig, p *Placement) { c.PrefetchFact = 1 })
		t8 = simStoreOnce(b, func(c *SimConfig, p *Placement) { c.PrefetchFact = 8 })
		t32 = simStoreOnce(b, func(c *SimConfig, p *Placement) { c.PrefetchFact = 32 })
	}
	b.ReportMetric(t1, "s-prefetch1")
	b.ReportMetric(t8, "s-prefetch8")
	b.ReportMetric(t32, "s-prefetch32")
}

// BenchmarkAblationPrimeDisks quantifies the Section 4.6 gcd clustering for
// the 1CODE query: 100 disks leave only 5 usable; 101 (prime) or the gap
// scheme restore parallelism.
func BenchmarkAblationPrimeDisks(b *testing.B) {
	star := APB1()
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		b.Fatal(err)
	}
	q, err := ParseQuery(star, "product::code=77")
	if err != nil {
		b.Fatal(err)
	}
	var d100, d101, gap int
	for i := 0; i < b.N; i++ {
		d100 = DisksUsed(spec, q, Placement{Disks: 100, Scheme: RoundRobin})
		d101 = DisksUsed(spec, q, Placement{Disks: 101, Scheme: RoundRobin})
		gap = DisksUsed(spec, q, Placement{Disks: 100, Scheme: GapRoundRobin})
	}
	b.ReportMetric(float64(d100), "disks-rr100")
	b.ReportMetric(float64(d101), "disks-prime101")
	b.ReportMetric(float64(gap), "disks-gap100")
}

// BenchmarkAdvisor measures the full Section 4.7 guideline pipeline:
// enumerate 167 options, filter by thresholds, rank by total work.
func BenchmarkAdvisor(b *testing.B) {
	star := APB1()
	icfg := APB1Indexes(star)
	gen := NewQueryGenerator(star, 2)
	q1, _ := gen.Next(OneMonthOneGroup)
	q2, _ := gen.Next(OneStore)
	q3, _ := gen.Next(OneCodeOneQuarter)
	mix := []WeightedQuery{
		{Name: "1MONTH1GROUP", Query: q1, Weight: 0.5},
		{Name: "1STORE", Query: q2, Weight: 0.3},
		{Name: "1CODE1QUARTER", Query: q3, Weight: 0.2},
	}
	th := Thresholds{MinBitmapFragPages: 1, MaxFragments: MaxFragments(star, 1), MinFragments: 100}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = len(Advise(star, icfg, mix, th, DefaultCostParams()))
	}
	b.ReportMetric(float64(n), "admissible-candidates")
}

// BenchmarkEngineQuery measures real (non-simulated) parallel star query
// execution over generated data at reduced scale.
func BenchmarkEngineQuery(b *testing.B) {
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 3)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		b.Fatal(err)
	}
	icfg := APB1Indexes(star)
	eng, err := BuildEngine(tab, spec, icfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := NewQueryGenerator(star, 7)
	q, err := gen.Next(OneStore)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Execute(q, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitmapAnd measures raw bitmap intersection throughput — the
// inner loop of star join processing (Section 3.2).
func BenchmarkBitmapAnd(b *testing.B) {
	const n = 1 << 20
	x := bitmap.New(n)
	y := bitmap.New(n)
	for i := 0; i < n; i += 3 {
		x.Set(i)
	}
	for i := 0; i < n; i += 5 {
		y.Set(i)
	}
	b.SetBytes(n / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := x.Clone()
		z.And(y)
	}
}

// BenchmarkEncodedSelect measures encoded-index selections at group level
// (10 of 15 bitmaps, Table 1).
func BenchmarkEncodedSelect(b *testing.B) {
	star := APB1()
	p := star.Dim("product")
	layout := bitmap.NewLayout(p, nil)
	values := make([]int32, 200_000)
	for i := range values {
		values[i] = int32(i * 7 % p.LeafCard())
	}
	idx := bitmap.NewEncodedIndex(layout, values)
	group := p.LevelIndex("group")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, _ := idx.Select(group, i%480)
		_ = sel
	}
}

// BenchmarkFragmentLookup measures query-to-fragment confinement (the
// planner's hot path).
func BenchmarkFragmentLookup(b *testing.B) {
	star := APB1()
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		b.Fatal(err)
	}
	gen := NewQueryGenerator(star, 5)
	q, err := gen.Next(OneCodeOneQuarter)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := spec.FragmentIDs(q)
		if len(ids) != 3 {
			b.Fatal("unexpected fragment count")
		}
	}
}

// BenchmarkTable2Enumeration measures fragmentation-option enumeration.
func BenchmarkTable2Enumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Table2()
		if len(cells) != 16 {
			b.Fatal("bad cell count")
		}
	}
}
