package mdhf

import (
	"context"
	"sort"
	"time"

	"repro/internal/frag"
	"repro/internal/kernel"
)

// sharedKey partitions shared-scan compatibility: only executions pinned
// to the same epoch and the same delta high-water mark may batch. The
// seal sequence is warehouse-wide and strictly monotone, so an equal
// MaxSeq at an equal epoch means a byte-identical serving state — every
// member of a batch would have computed against exactly the same base
// backend and delta set solo.
type sharedKey struct {
	epoch int64
	seq   uint64
}

// sharedItem is one query submitted to the admission batcher.
type sharedItem struct {
	q frag.Query
}

// sharedOut is one batched query's outcome: its result and fully
// assembled Stats (Wall excepted — each member stamps its own), or its
// per-query validation error.
type sharedOut struct {
	res Result
	st  Stats
	err error
}

// SharedServingStats is the warehouse-wide shared-scan accounting
// surfaced in ServingStats.Shared (zero without WithSharedScans).
type SharedServingStats struct {
	// Batches counts multi-query batches executed (size >= 2);
	// BatchedQueries the executions they served. SoloWindows counts
	// admission windows that closed with a single query (no batch-mate
	// arrived).
	Batches        int64
	BatchedQueries int64
	SoloWindows    int64
	// FragmentsShared sums, over every batched query, the fragments whose
	// scan task also served at least one batch-mate.
	FragmentsShared int64
	// PhysReadsSaved counts the physical reads (bitmap and fact-granule
	// I/Os) batching eliminated: reads a query would have issued solo but
	// instead consumed from a batch-mate's.
	PhysReadsSaved int64
	// Fallbacks counts batch-wide failures whose members re-executed solo
	// (batching is only ever a performance effect).
	Fallbacks int64
}

// executeSharedOn routes one execution through the shared-scan batcher:
// it donates at most one admission window waiting for batch-mates, then
// the group leader scans the queries' fragment union once and every
// member collects its own result. handled=false reports a batch-wide
// failure (an I/O error, or the leader's cancellation observed by a
// follower) — the caller falls back to solo execution on its own pinned
// snapshot, so batching can only ever be a performance effect.
func (p *PreparedQuery) executeSharedOn(ctx context.Context, snap snapshot) (res Result, st Stats, handled bool, err error) {
	w := p.w
	start := time.Now()
	key := sharedKey{epoch: snap.epoch, seq: snap.deltas.MaxSeq()}
	out, _, err := w.shared.Do(ctx, key, sharedItem{q: p.q}, func(items []sharedItem) ([]sharedOut, error) {
		return w.runSharedBatch(ctx, snap, items)
	})
	if err != nil {
		if ctx.Err() != nil {
			// Our own context expired (waiting, or leading): solo retry
			// would fail identically.
			return Result{}, Stats{}, true, err
		}
		w.sharedFallbacks.Add(1)
		return Result{}, Stats{}, false, err
	}
	if out.err != nil {
		// Per-query error (validation): deterministic and correctly
		// attributed by the batch, no point re-failing solo.
		return Result{}, Stats{}, true, out.err
	}
	out.st.Wall = time.Since(start)
	return out.res, out.st, true, nil
}

// runSharedBatch executes one sealed batch against the snapshot every
// member pinned (the key guarantees they are interchangeable) and
// assembles each member's Stats exactly as solo execution would have —
// logical counters untouched, physical savings in Stats.SharedScan.
func (w *Warehouse) runSharedBatch(ctx context.Context, snap snapshot, items []sharedItem) ([]sharedOut, error) {
	qs := make([]frag.Query, len(items))
	for i := range items {
		qs[i] = items[i].q
	}
	deltas := kernel.Deltas{Ix: w.ix, Set: snap.deltas}
	outs := make([]sharedOut, len(items))
	if snap.b.engine != nil {
		rs, err := snap.b.engine.ExecuteSharedDeltas(ctx, w.sched, qs, deltas, nil)
		if err != nil {
			return nil, err
		}
		for i, r := range rs {
			if r.Err != nil {
				outs[i].err = r.Err
				continue
			}
			st := w.baseStats(snap)
			st.Engine = r.St
			st.DeltaRows = r.St.DeltaRows
			st.SharedScan = r.Shared
			outs[i] = sharedOut{res: r.Res, st: st}
		}
	} else {
		rs, err := snap.b.be.Exec.ExecuteSharedDeltas(ctx, qs, deltas, nil)
		if err != nil {
			return nil, err
		}
		for i, r := range rs {
			if r.Err != nil {
				outs[i].err = r.Err
				continue
			}
			st := w.baseStats(snap)
			st.IO = r.St
			st.DeltaRows = r.St.DeltaRows
			if snap.b.be.Disks != nil {
				st.Disks = snap.b.be.Disks.Stats()
			}
			st.SharedScan = r.Shared
			outs[i] = sharedOut{res: r.Res, st: st}
		}
	}
	w.noteSharedBatch(outs, len(items))
	return outs, nil
}

// noteSharedBatch folds one batch's effect into the warehouse-wide
// shared-scan counters.
func (w *Warehouse) noteSharedBatch(outs []sharedOut, n int) {
	if n >= 2 {
		w.sharedBatches.Add(1)
		w.sharedBatchedQueries.Add(int64(n))
	} else {
		w.sharedSoloWindows.Add(1)
	}
	for i := range outs {
		w.sharedFragments.Add(int64(outs[i].st.SharedScan.FragmentsShared))
		w.sharedPhysSaved.Add(outs[i].st.SharedScan.PhysReadsSaved)
	}
}

// sharedServingStats snapshots the warehouse-wide shared-scan counters.
func (w *Warehouse) sharedServingStats() SharedServingStats {
	return SharedServingStats{
		Batches:         w.sharedBatches.Load(),
		BatchedQueries:  w.sharedBatchedQueries.Load(),
		SoloWindows:     w.sharedSoloWindows.Load(),
		FragmentsShared: w.sharedFragments.Load(),
		PhysReadsSaved:  w.sharedPhysSaved.Load(),
		Fallbacks:       w.sharedFallbacks.Load(),
	}
}

// observedQueryCap bounds the per-query-text mix map; executions beyond
// it still count in the totals but are not individually recorded.
const observedQueryCap = 512

// observedQuery is one recorded query of the observed mix.
type observedQuery struct {
	q     frag.Query
	class QueryClass
	frags int64
	count int64
}

// ObservedQuery is one entry of the observed query mix (see
// ServingStats.QueryMix): a query actually executed against the
// warehouse, its classification and fragment-region size, and how often
// it ran.
type ObservedQuery struct {
	// Text is the query in canonical member-index notation.
	Text string
	// Class is the paper's Q1-Q4 confinement classification.
	Class QueryClass
	// Fragments is the size of the query's confinement region (its
	// relevant-fragment count).
	Fragments int64
	// Count is how many successful executions the query had.
	Count int64
}

// QueryMixStats is the observed query mix recorded over every successful
// Execute — the per-class and per-fragment-region view of what the
// warehouse actually serves, and the empirical input AdviseObserved
// feeds back into the fragmentation advisor.
type QueryMixStats struct {
	// Total counts every successful execution (cache hits included —
	// the mix describes demand, not backend work).
	Total int64
	// ByClass breaks Total down by confinement classification.
	ByClass map[QueryClass]int64
	// Queries lists the distinct recorded queries, most-executed first
	// (ties in canonical-text order).
	Queries []ObservedQuery
	// Dropped counts executions of distinct queries beyond the recording
	// capacity; they are in Total and ByClass but not in Queries.
	Dropped int64
}

// recordObserved folds one successful execution into the observed mix.
func (w *Warehouse) recordObserved(q Query) {
	if w.spec == nil {
		return
	}
	class := w.spec.Classify(q)
	text := frag.Format(w.star, q)
	w.mixMu.Lock()
	defer w.mixMu.Unlock()
	w.mixTotal++
	if w.mixByClass == nil {
		w.mixByClass = make(map[QueryClass]int64)
	}
	w.mixByClass[class]++
	o := w.mix[text]
	if o == nil {
		if len(w.mix) >= observedQueryCap {
			w.mixDropped++
			return
		}
		if w.mix == nil {
			w.mix = make(map[string]*observedQuery)
		}
		o = &observedQuery{q: q, class: class, frags: w.spec.Relevant(q).Count()}
		w.mix[text] = o
	}
	o.count++
}

// queryMixStats snapshots the observed mix (Warehouse.mixMu taken).
func (w *Warehouse) queryMixStats() QueryMixStats {
	w.mixMu.Lock()
	defer w.mixMu.Unlock()
	st := QueryMixStats{Total: w.mixTotal, Dropped: w.mixDropped}
	if len(w.mixByClass) > 0 {
		st.ByClass = make(map[QueryClass]int64, len(w.mixByClass))
		for c, n := range w.mixByClass {
			st.ByClass[c] = n
		}
	}
	st.Queries = make([]ObservedQuery, 0, len(w.mix))
	for text, o := range w.mix {
		st.Queries = append(st.Queries, ObservedQuery{Text: text, Class: o.class, Fragments: o.frags, Count: o.count})
	}
	sort.Slice(st.Queries, func(i, j int) bool {
		if st.Queries[i].Count != st.Queries[j].Count {
			return st.Queries[i].Count > st.Queries[j].Count
		}
		return st.Queries[i].Text < st.Queries[j].Text
	})
	return st
}

// ObservedMix returns the recorded query mix as a weighted mix for the
// advisor, weights normalised over the recorded executions (nil before
// anything ran). Unlike a hand-written mix this is what the warehouse
// actually served, so re-advising with it closes the design loop:
// fragment for the workload you have, not the one you guessed.
func (w *Warehouse) ObservedMix() []WeightedQuery {
	w.mixMu.Lock()
	defer w.mixMu.Unlock()
	if len(w.mix) == 0 {
		return nil
	}
	texts := make([]string, 0, len(w.mix))
	var total int64
	for text, o := range w.mix {
		texts = append(texts, text)
		total += o.count
	}
	sort.Strings(texts)
	mix := make([]WeightedQuery, len(texts))
	for i, text := range texts {
		o := w.mix[text]
		mix[i] = WeightedQuery{Name: text, Query: o.q, Weight: float64(o.count) / float64(total)}
	}
	return mix
}

// AdviseObserved ranks the admissible fragmentations of the warehouse's
// schema over the *observed* query mix — the queries Execute actually
// served, weighted by how often they ran — instead of a hand-written
// one. It returns nil before any query has executed.
func (w *Warehouse) AdviseObserved(th Thresholds) []Ranked {
	mix := w.ObservedMix()
	if len(mix) == 0 {
		return nil
	}
	return w.Advise(mix, th)
}

// AdviseDisksObserved ranks disk counts and placement schemes over the
// observed query mix (see AdviseDisks); nil before any query has
// executed or on an advisory-only warehouse.
func (w *Warehouse) AdviseDisksObserved(dp DiskParams, diskCounts []int) []DiskRanked {
	mix := w.ObservedMix()
	if len(mix) == 0 || w.spec == nil {
		return nil
	}
	return AdviseDisks(w.spec, w.icfg, mix, w.opt.params, dp, diskCounts)
}
