package mdhf

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// ingestBackends are the backend configurations every ingestion test
// exercises: both engines, both bitmap representations, and declustered
// disk sets under both placement schemes.
var ingestBackends = []struct {
	name string
	opts []Option
}{
	{"in-memory", nil},
	{"in-memory/compressed", []Option{WithCompression()}},
	{"on-disk", []Option{WithOnDisk("")}},
	{"on-disk/compressed", []Option{WithOnDisk(""), WithCompression()}},
	{"declustered", []Option{WithDisks(4, RoundRobin)}},
	{"declustered/gap/compressed", []Option{WithDisks(3, GapRoundRobin), WithCompression()}},
}

// ingestQueries spans the paper's query classes, grouped and ungrouped,
// under the standard "time::month, product::group" fragmentation.
var ingestQueries = []string{
	"time::month=1",
	"product::code=3",
	"time::quarter=1",
	"time::month=2, product::code=5",
	"customer::store=2",
	"",
	"time::month=1 group by product::group",
	"customer::retailer=1 group by time::month, product::class",
	"group by time::quarter, customer::store",
}

// splitRows converts rows [lo,hi) of a table into FactRows.
func splitRows(t *FactTable, lo, hi int) []FactRow {
	rows := make([]FactRow, 0, hi-lo)
	for i := lo; i < hi; i++ {
		leaves := make([]int32, len(t.Dims))
		for d := range t.Dims {
			leaves[d] = t.Dims[d][i]
		}
		rows = append(rows, FactRow{
			Leaves:      leaves,
			UnitsSold:   t.UnitsSold[i],
			DollarSales: t.DollarSales[i],
			Cost:        t.Cost[i],
		})
	}
	return rows
}

// prefixTable returns the first n rows of a table as a new table.
func prefixTable(t *FactTable, n int) *FactTable {
	head := &FactTable{Star: t.Star, Dims: make([][]int32, len(t.Dims))}
	for d := range t.Dims {
		head.Dims[d] = t.Dims[d][:n:n]
	}
	head.UnitsSold = t.UnitsSold[:n:n]
	head.DollarSales = t.DollarSales[:n:n]
	head.Cost = t.Cost[:n:n]
	return head
}

// withRows returns a new table with the FactRows appended.
func withRows(t *FactTable, rows []FactRow) *FactTable {
	out := &FactTable{Star: t.Star, Dims: make([][]int32, len(t.Dims))}
	for d := range t.Dims {
		out.Dims[d] = append(t.Dims[d][:len(t.Dims[d]):len(t.Dims[d])], nil...)
		for _, r := range rows {
			out.Dims[d] = append(out.Dims[d], r.Leaves[d])
		}
	}
	app := func(col []int64, get func(FactRow) int64) []int64 {
		out := col[:len(col):len(col)]
		for _, r := range rows {
			out = append(out, get(r))
		}
		return out
	}
	out.UnitsSold = app(t.UnitsSold, func(r FactRow) int64 { return r.UnitsSold })
	out.DollarSales = app(t.DollarSales, func(r FactRow) int64 { return r.DollarSales })
	out.Cost = app(t.Cost, func(r FactRow) int64 { return r.Cost })
	return out
}

// TestAppendEquivalence is the base+delta oracle: a warehouse seeded with
// a prefix of the table and fed the remainder through Append must answer
// every query byte-identically to a warehouse built from scratch over
// the same rows — before compaction (base + delta merge), after Compact
// (rebuilt backend at epoch 1), and after further appends on top of the
// compacted epoch — on every backend.
func TestAppendEquivalence(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	n := full.N()
	base := prefixTable(full, n*2/3)
	extra := splitRows(full, n*2/3, n)
	again := splitRows(full, 0, n/4) // duplicates are legal appends
	cfg := func(tab *FactTable) Config {
		return Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}
	}
	for _, bk := range ingestBackends {
		t.Run(bk.name, func(t *testing.T) {
			w, err := Open(ctx, cfg(base), bk.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			oracle, err := Open(ctx, cfg(full), bk.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer oracle.Close()

			// Three append batches, so segments coalesce and stack.
			per := (len(extra) + 2) / 3
			for lo := 0; lo < len(extra); lo += per {
				hi := lo + per
				if hi > len(extra) {
					hi = len(extra)
				}
				if err := w.Append(ctx, extra[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			check := func(phase string, wantEpoch int64, wantDelta int64) {
				t.Helper()
				for _, text := range ingestQueries {
					q, err := ParseQuery(star, text)
					if err != nil {
						t.Fatal(err)
					}
					got, gst, err := w.Query(q).Execute(ctx)
					if err != nil {
						t.Fatalf("%s: %q: %v", phase, text, err)
					}
					want, _, err := oracle.Query(q).Execute(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: %q: base+delta %+v != oracle %+v", phase, text, got, want)
					}
					if gst.Epoch != wantEpoch {
						t.Errorf("%s: %q: pinned epoch %d, want %d", phase, text, gst.Epoch, wantEpoch)
					}
					if q.Preds == nil && q.GroupBy == nil && gst.DeltaRows != wantDelta {
						t.Errorf("%s: full scan folded %d delta rows, want %d", phase, gst.DeltaRows, wantDelta)
					}
				}
			}
			check("pre-compaction", 0, int64(len(extra)))
			st := w.ServingStats()
			if st.Appends != 3 || st.AppendedRows != int64(len(extra)) || st.DeltaRows != int64(len(extra)) {
				t.Fatalf("serving stats after appends: %+v", st)
			}

			if err := w.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			if e := w.Epoch(); e != 1 {
				t.Fatalf("epoch after compaction = %d", e)
			}
			check("post-compaction", 1, 0)
			st = w.ServingStats()
			if st.Compactions != 1 || st.CompactedRows != int64(len(extra)) || st.DeltaRows != 0 || st.DeltaSegments != 0 {
				t.Fatalf("serving stats after compaction: %+v", st)
			}

			// Appends keep working on the compacted epoch.
			if err := w.Append(ctx, again); err != nil {
				t.Fatal(err)
			}
			oracle2, err := Open(ctx, cfg(withRows(full, again)), bk.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer oracle2.Close()
			oracle = oracle2
			check("post-compaction append", 1, int64(len(again)))
		})
	}
}

// TestAppendValidation rejects malformed rows without changing state.
func TestAppendValidation(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month", Table: MustGenerateData(star, 8)})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(ctx, nil); err != nil {
		t.Fatal("empty append:", err)
	}
	if err := w.Append(ctx, []FactRow{{Leaves: []int32{1, 2}}}); err == nil {
		t.Fatal("short leaves accepted")
	}
	if err := w.Append(ctx, []FactRow{{Leaves: []int32{99, 0, 0}}}); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
	if st := w.ServingStats(); st.Appends != 0 || st.DeltaRows != 0 {
		t.Fatalf("failed appends changed state: %+v", st)
	}
}

// TestCompactionDoesNotBlockOrChangeResults runs 16 concurrent query
// streams while compactions roll the epoch underneath them: admission
// must never fail and every result must stay byte-identical to the
// pre-compaction answer, since no rows are added while the streams run.
func TestCompactionDoesNotBlockOrChangeResults(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group", Table: prefixTable(full, full.N()/2)},
		WithDisks(3, RoundRobin), WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(ctx, splitRows(full, full.N()/2, full.N())); err != nil {
		t.Fatal(err)
	}

	queries := make([]Query, len(ingestQueries))
	want := make([]Result, len(ingestQueries))
	for i, text := range ingestQueries {
		q, err := ParseQuery(star, text)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
		if want[i], _, err = w.Query(q).Execute(ctx); err != nil {
			t.Fatal(err)
		}
	}

	const streams = 16
	const perStream = 12
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	sawEpoch1 := make(chan struct{}, streams*perStream)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				qi := (s + i) % len(queries)
				got, st, err := w.Query(queries[qi]).Execute(ctx)
				if err != nil {
					errs <- fmt.Errorf("stream %d: %v", s, err)
					return
				}
				if !reflect.DeepEqual(got, want[qi]) {
					errs <- fmt.Errorf("stream %d epoch %d: query %d diverged", s, st.Epoch, qi)
					return
				}
				if st.Epoch >= 1 {
					select {
					case sawEpoch1 <- struct{}{}:
					default:
					}
				}
			}
		}(s)
	}
	// Compact mid-flight: the first run folds the deltas, later ones are
	// no-ops — either way queries keep being admitted and agreeing.
	if err := w.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if len(sawEpoch1) == 0 {
		t.Log("note: no stream observed epoch 1 (compaction finished after the streams)")
	}
	st := w.ServingStats()
	if st.QueriesAdmitted < streams*perStream {
		t.Fatalf("admitted %d queries, want >= %d", st.QueriesAdmitted, streams*perStream)
	}
}

// TestIngestHammer interleaves Append, Execute, Compact and Close on one
// shared warehouse under the race detector: every operation must either
// succeed or fail with ErrClosed, and Close must drain cleanly.
func TestIngestHammer(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group", Table: prefixTable(full, full.N()/2)},
		WithDisks(3, GapRoundRobin), WithCompression(), WithAutoCompaction(64))
	if err != nil {
		t.Fatal(err)
	}
	rootDir := ""
	q, err := ParseQuery(star, "time::month=1 group by product::group")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the backend so the hammer races serving, not the lazy build.
	if _, _, err := w.Query(q).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	rootDir = w.rootDir

	ok := func(err error) bool { return err == nil || errors.Is(err, ErrClosed) }
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 25; i++ {
				rows := make([]FactRow, 1+rng.Intn(8))
				for r := range rows {
					leaves := make([]int32, len(star.Dims))
					for d := range leaves {
						leaves[d] = int32(rng.Intn(star.Dims[d].LeafCard()))
					}
					rows[r] = FactRow{Leaves: leaves, UnitsSold: 1, DollarSales: 2, Cost: 3}
				}
				if err := w.Append(ctx, rows); !ok(err) {
					errs <- fmt.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, _, err := w.Query(q).Execute(ctx); !ok(err) {
					errs <- fmt.Errorf("execute: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := w.Compact(ctx); !ok(err) {
				errs <- fmt.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Close races the workers above; everything after it must drain to
		// ErrClosed and the files must be gone.
		if err := w.Close(); err != nil {
			errs <- fmt.Errorf("close: %v", err)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("second close:", err)
	}
	if _, _, err := w.Query(q).Execute(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("execute after close: %v", err)
	}
	if err := w.Append(ctx, nil); err != nil {
		t.Fatalf("empty append after close: %v", err)
	}
	if _, err := os.Stat(rootDir); !os.IsNotExist(err) {
		t.Fatalf("owned root %s not removed: %v", rootDir, err)
	}
}

// TestCloseAfterFailedBuild is the error-path regression for the owned
// temporary directory: when the lazy first-Execute backend build fails
// partway (here: a dimension whose cardinality exceeds the store's
// uint16 keys, caught only by storage.Build after the temp dir was
// created), the directory must be removed immediately — even if Close
// is never called — and Close must still succeed.
func TestCloseAfterFailedBuild(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	ctx := context.Background()
	star := &Star{
		Name: "overflow",
		Dims: []Dimension{
			{Name: "big", Levels: []Level{{Name: "top", Card: 2}, {Name: "leaf", Card: 1 << 17}}},
			{Name: "small", Levels: []Level{{Name: "only", Card: 2}}},
		},
		Density:   0.0001,
		TupleSize: 16,
		PageSize:  4096,
	}
	icfg := IndexConfig{{Kind: SimpleIndexes}, {Kind: SimpleIndexes}}
	w, err := Open(ctx, Config{Star: star, Fragmentation: "small::only", Indexes: icfg}, WithOnDisk(""))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(star, "small::only=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Query(q).Execute(ctx); err == nil {
		t.Fatal("build over uint16-overflowing dimension succeeded")
	}
	// The owned temp root must already be gone, before Close.
	ents, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("leaked %s after failed build", filepath.Join(tmp, e.Name()))
	}
	if err := w.Close(); err != nil {
		t.Fatal("close after failed build:", err)
	}
}
